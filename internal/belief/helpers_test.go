package belief

import (
	"testing"

	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/table"
)

// buildRegionDataset creates a one-row-per-region table bound to loc.
func buildRegionDataset(loc *dimension.Hierarchy) (*olap.Dataset, error) {
	region := table.NewStringColumn("region")
	salary := table.NewFloat64Column("salary")
	for _, m := range loc.MembersAt(1) {
		region.Append(m.Name)
		salary.Append(80000)
	}
	tab, err := table.New("salaries", region, salary)
	if err != nil {
		return nil, err
	}
	return olap.NewDataset(tab, loc)
}

// tableColumn is a trivial helper asserting the hierarchy has regions.
func tableColumn(t *testing.T, loc *dimension.Hierarchy) []*dimension.Member {
	t.Helper()
	ms := loc.MembersAt(1)
	if len(ms) == 0 {
		t.Fatal("hierarchy has no regions")
	}
	return ms
}
