package belief

import (
	"math"
	"math/bits"

	"repro/internal/olap"
	"repro/internal/speech"
)

// Scorer computes speech quality against one fully evaluated result with
// an incremental apply/undo API. Instead of rebuilding every mean from
// scratch per speech (O(aggregates × refinements) per Quality call), the
// scorer keeps a stack of per-depth means vectors: Push applies one
// refinement as a single bitset sweep over the previous depth's vector,
// Pop discards the top vector. A DFS over the speech tree therefore pays
// one sweep per *edge* instead of one full rebuild per *node*.
//
// The arithmetic is bit-for-bit identical to Model.Mean/Model.Quality:
// each depth's means are produced by the same additions, in the same
// order, with the same compensation expression, and Quality evaluates the
// same stats.Normal.Prob calls in ascending aggregate order. A search that
// compares qualities with a strict ">" (core.Optimal) therefore selects
// exactly the same speech either way; see DESIGN.md.
//
// A Scorer is single-goroutine state; parallel searches use one scorer
// each.
type Scorer struct {
	m *Model
	n int

	// Per-aggregate actual values and bucket bounds of the bound result,
	// hoisted out of the per-speech loop: NaN aggregates are marked by
	// ok[i]=false and skipped exactly as Model.Quality skips them.
	// okList/okCnt precompute the skip so Quality iterates the defined
	// aggregates (still in ascending order) without a branch per index;
	// the bucket bounds live in flat his/los arrays so the hot loop is
	// pure indexed float loads.
	vals   []float64
	ok     []bool
	his    []float64
	los    []float64
	okList []int32
	okCnt  int

	// levels[d] is the means vector after applying d refinements;
	// levels[0] is the baseline-only vector.
	levels [][]float64
	refs   []*speech.Refinement
	deltas []float64

	baseline    float64
	hasBaseline bool
}

// NewScorer returns a scorer bound to result, which must be evaluated over
// the model's aggregate space (it panics otherwise, like Model.Quality).
// The model's BucketStep is captured at construction and must not change
// while the scorer is in use.
func (m *Model) NewScorer(result *olap.Result) *Scorer {
	if result.Space() != m.space {
		panic("belief: result evaluated over a different aggregate space")
	}
	n := m.space.Size()
	sc := &Scorer{
		m:      m,
		n:      n,
		vals:   make([]float64, n),
		ok:     make([]bool, n),
		his:    make([]float64, n),
		los:    make([]float64, n),
		levels: [][]float64{make([]float64, n)},
	}
	for a := 0; a < n; a++ {
		v := result.Value(a)
		sc.vals[a] = v
		if !math.IsNaN(v) {
			sc.ok[a] = true
			iv := m.bucket(v)
			sc.his[a] = iv.Hi
			sc.los[a] = iv.Lo
			sc.okList = append(sc.okList, int32(a))
		}
	}
	sc.okCnt = len(sc.okList)
	return sc
}

// Reset rebuilds the scorer's state for speech s: the baseline level plus
// one pushed level per refinement. A nil s resets to an empty speech.
func (sc *Scorer) Reset(s *speech.Speech) {
	sc.refs = sc.refs[:0]
	sc.deltas = sc.deltas[:0]
	base := sc.levels[0]
	if s != nil && s.Baseline != nil {
		sc.hasBaseline = true
		sc.baseline = s.Baseline.Value
		for a := range base {
			base[a] = sc.baseline
		}
	} else {
		sc.hasBaseline = false
		sc.baseline = 0
		for a := range base {
			base[a] = 0
		}
	}
	if s != nil {
		for _, r := range s.Refinements {
			sc.Push(r)
		}
	}
}

// Depth returns the number of currently applied refinements.
func (sc *Scorer) Depth() int { return len(sc.refs) }

// Push applies refinement r on top of the current state: one bitset sweep
// producing the next depth's means vector. The delta follows
// speech.Speech.Deltas exactly — relative to the baseline adjusted by
// every previously pushed refinement whose scope subsumes r.
func (sc *Scorer) Push(r *speech.Refinement) {
	var d float64
	if sc.hasBaseline {
		ref := sc.baseline
		for j, pr := range sc.refs {
			if pr.Subsumes(r) {
				ref += sc.deltas[j]
			}
		}
		d = ref * float64(r.Percent) / 100
		if r.Dir == speech.Decrease {
			d = -d
		}
	}
	depth := len(sc.refs)
	src := sc.levels[depth]
	if len(sc.levels) == depth+1 {
		sc.levels = append(sc.levels, make([]float64, sc.n))
	}
	dst := sc.levels[depth+1]

	n := sc.n
	sz := r.ScopeSize
	ss := r.Scope
	if sz <= 0 || ss == nil {
		ss = sc.m.space.ScopeSet(r.Preds)
		if sz <= 0 {
			sz = ss.Size()
		}
	}
	// The compensation uses the identical expression Model.Mean evaluates,
	// computed once per refinement instead of once per aggregate.
	compensate := n > sz
	var comp float64
	if compensate {
		comp = float64(sz) * d / float64(n-sz)
	}
	// Two-phase sweep: fill the whole vector with the out-of-scope value,
	// then rewrite the in-scope entries by iterating the set bits. In-scope
	// entries are recomputed from src (not patched up from the first pass),
	// so every element is exactly src+d or src-comp — the same values the
	// per-element branch would produce.
	if compensate {
		for a, v := range src[:n] {
			dst[a] = v - comp
		}
	} else {
		copy(dst[:n], src[:n])
	}
	for w, bitsW := range ss.Words() {
		base := w << 6
		for bitsW != 0 {
			a := base + bits.TrailingZeros64(bitsW)
			dst[a] = src[a] + d
			bitsW &= bitsW - 1
		}
	}
	sc.refs = append(sc.refs, r)
	sc.deltas = append(sc.deltas, d)
}

// Pop undoes the most recent Push. Because each depth keeps its own means
// vector, undo is an exact stack pop — no floating-point subtraction, so
// the restored state is bitwise the pre-Push state.
func (sc *Scorer) Pop() {
	if len(sc.refs) == 0 {
		panic("belief: Pop on empty scorer")
	}
	sc.refs = sc.refs[:len(sc.refs)-1]
	sc.deltas = sc.deltas[:len(sc.deltas)-1]
}

// Means returns the current means vector (the top of the level stack).
// The slice is owned by the scorer and valid until the next Push/Pop/Reset.
func (sc *Scorer) Means() []float64 { return sc.levels[len(sc.refs)] }

// Quality returns the exact speech quality (Definition 2.2) of the current
// state against the bound result: identical to Model.Quality on the speech
// whose refinements are currently pushed.
func (sc *Scorer) Quality() float64 {
	if sc.okCnt == 0 {
		return 0
	}
	means := sc.levels[len(sc.refs)]
	// Inlined stats.Normal.Prob with the sigma*sqrt2 denominator hoisted
	// out of the loop: the identical operations in the identical order, so
	// every term is bit-for-bit Normal{mu,sigma}.Prob(lo, hi). The
	// hi<=lo early-out needs no branch here — buckets are constant-width
	// windows (Hi >= Lo always), and at zero width the two Erfc terms
	// cancel exactly, matching Prob's 0.
	sd := sc.m.sigma * math.Sqrt2
	var sum float64
	if sc.okCnt == sc.n {
		// Every aggregate is defined (the common case on evaluated
		// results): iterate densely, which also lets the compiler drop
		// the his/los bounds checks. Same aggregates, same ascending
		// order, same arithmetic as the sparse loop below.
		his := sc.his[:len(means)]
		los := sc.los[:len(means)]
		for a, mu := range means {
			p := 0.5*math.Erfc(-(his[a]-mu)/sd) - 0.5*math.Erfc(-(los[a]-mu)/sd)
			if p < 0 {
				p = 0
			}
			sum += p
		}
		return sum / float64(sc.okCnt)
	}
	for _, a := range sc.okList {
		mu := means[a]
		p := 0.5*math.Erfc(-(sc.his[a]-mu)/sd) - 0.5*math.Erfc(-(sc.los[a]-mu)/sd)
		if p < 0 {
			p = 0
		}
		sum += p
	}
	return sum / float64(sc.okCnt)
}

// Score is the one-shot convenience: Reset to s and return its Quality.
func (sc *Scorer) Score(s *speech.Speech) float64 {
	sc.Reset(s)
	return sc.Quality()
}
