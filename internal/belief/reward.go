package belief

import (
	"math"

	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/speech"
)

// RewardKernel is a per-worker reward evaluator producing bit-identical
// results to Model.Reward. The model itself is already safe to share across
// planner workers (it only reads immutable state), but every Reward call
// re-derives the same per-speech quantities: the refinement deltas, scope
// sizes, and compensation terms of Mean, plus the bucket step and the
// σ·√2 denominator of the normal CDF. MCTS evaluates each leaf speech many
// times per batch, so a worker-private kernel memoizes the per-speech terms
// (keyed on the speech pointer — speeches are immutable once built) and
// hoists the constants, leaving only two Erfc calls and a short
// scope-membership loop on the hot path.
//
// Exactness contract: for any speech, aggregate, and estimate,
// kernel.Reward == model.Reward down to the last bit (pinned by
// TestRewardKernelBitIdentical). Every floating-point expression below is
// the same expression Model.Reward evaluates, merely computed once instead
// of per call; no reassociation, no fused alternatives.
//
// A kernel is NOT safe for concurrent use — create one per worker (see
// mcts.Tree.SeededEvalFactory). It snapshots Model.BucketStep at creation,
// so mutate BucketStep before building kernels, not during a batch.
type RewardKernel struct {
	space    *olap.Space
	sd       float64 // sigma * √2: the CDF denominator, hoisted
	halfStep float64 // bucket step / 2: the bucket half-width, hoisted
	cache    map[*speech.Speech]*rewardTerms
}

// rewardTerms is the compiled form of one speech: the baseline value plus
// one precomputed term per refinement.
type rewardTerms struct {
	base  float64
	terms []rewardTerm
}

// rewardTerm carries a refinement's per-aggregate contribution to Mean:
// +delta when the aggregate is in scope, -comp when out of scope (and the
// scope does not cover the whole space).
type rewardTerm struct {
	scope      *olap.ScopeSet      // generator-built membership bitset
	preds      []*dimension.Member // fallback membership when scope is nil
	delta      float64
	comp       float64
	compensate bool
}

// NewRewardKernel returns a fresh single-worker kernel for the model.
func (m *Model) NewRewardKernel() *RewardKernel {
	step := m.BucketStep
	if step <= 0 {
		step = BucketStepForScale(2 * m.sigma)
	}
	return &RewardKernel{
		space:    m.space,
		sd:       m.sigma * math.Sqrt2,
		halfStep: step / 2,
		cache:    make(map[*speech.Speech]*rewardTerms),
	}
}

// Reward is Model.Reward with the per-speech terms memoized: the belief
// probability of the estimate's rounding bucket under the mean M(agg, s).
func (k *RewardKernel) Reward(s *speech.Speech, agg int, estimate float64) float64 {
	c, ok := k.cache[s]
	if !ok {
		c = k.compile(s)
		k.cache[s] = c
	}
	mean := c.base
	for i := range c.terms {
		t := &c.terms[i]
		var in bool
		if t.scope != nil {
			in = t.scope.Contains(agg)
		} else {
			in = k.space.InScope(agg, t.preds)
		}
		if in {
			mean += t.delta
		} else if t.compensate {
			mean -= t.comp
		}
	}
	lo := estimate - k.halfStep
	hi := estimate + k.halfStep
	if hi <= lo {
		return 0
	}
	p := 0.5*math.Erfc(-(hi-mean)/k.sd) - 0.5*math.Erfc(-(lo-mean)/k.sd)
	if p < 0 {
		return 0
	}
	return p
}

// compile precomputes a speech's mean terms. The compensation term
// float64(sz)*deltas[i]/float64(n-sz) is evaluated exactly as in
// Model.Mean, so replaying it per aggregate stays bit-identical.
func (k *RewardKernel) compile(s *speech.Speech) *rewardTerms {
	c := &rewardTerms{}
	if s.Baseline == nil {
		return c // Mean is identically 0 without a baseline
	}
	c.base = s.Baseline.Value
	n := k.space.Size()
	deltas := s.Deltas()
	c.terms = make([]rewardTerm, len(s.Refinements))
	for i, r := range s.Refinements {
		sz := r.ScopeSize
		if sz <= 0 {
			sz = k.space.ScopeSize(r.Preds)
		}
		t := &c.terms[i]
		t.scope = r.Scope
		t.preds = r.Preds
		t.delta = deltas[i]
		if n > sz {
			t.compensate = true
			t.comp = float64(sz) * deltas[i] / float64(n-sz)
		}
	}
	return c
}
