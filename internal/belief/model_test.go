package belief

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/stats"
)

type env struct {
	dataset *olap.Dataset
	space   *olap.Space
	model   *Model
	gen     *speech.Generator
	result  *olap.Result
	airport *dimension.Hierarchy
	date    *dimension.Hierarchy
}

func newEnv(t *testing.T) *env {
	t.Helper()
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 20000, Seed: 31})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	airport := d.HierarchyByName("start airport")
	date := d.HierarchyByName("flight date")
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: airport, Level: 1},
			{Hierarchy: date, Level: 1},
		},
	}
	s, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	r, err := olap.EvaluateSpace(s)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	sigma := SigmaFromScale(r.GrandValue())
	m, err := NewModel(s, sigma)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return &env{
		dataset: d, space: s, model: m,
		gen:    speech.NewGenerator(s, speech.DefaultPrefs(), speech.PercentFormat),
		result: r, airport: airport, date: date,
	}
}

func (e *env) baselineSpeech(v float64) *speech.Speech {
	return &speech.Speech{
		Baseline: &speech.Baseline{Value: v, AggName: "average cancellation probability", Format: speech.PercentFormat},
	}
}

func TestNewModelValidation(t *testing.T) {
	e := newEnv(t)
	if _, err := NewModel(nil, 1); err == nil {
		t.Error("nil space should fail")
	}
	if _, err := NewModel(e.space, 0); err == nil {
		t.Error("zero sigma should fail")
	}
	if _, err := NewModel(e.space, math.NaN()); err == nil {
		t.Error("NaN sigma should fail")
	}
	if e.model.Space() != e.space || e.model.Sigma() <= 0 {
		t.Error("accessors misbehave")
	}
}

func TestBaselineOnlyMeans(t *testing.T) {
	e := newEnv(t)
	s := e.baselineSpeech(0.02)
	for a := 0; a < e.space.Size(); a++ {
		if got := e.model.Mean(s, a); got != 0.02 {
			t.Fatalf("aggregate %d mean = %v, want 0.02", a, got)
		}
	}
}

func TestNoBaselineMeansZero(t *testing.T) {
	e := newEnv(t)
	s := &speech.Speech{}
	if e.model.Mean(s, 0) != 0 {
		t.Error("speech without baseline should have zero means")
	}
}

func TestRefinementShiftsScope(t *testing.T) {
	e := newEnv(t)
	ne := e.airport.FindMember("the North East")
	s := e.baselineSpeech(0.02)
	s = s.Extend(&speech.Refinement{
		Preds: []*dimension.Member{ne}, Dir: speech.Increase, Percent: 50,
		ScopeSize: e.space.ScopeSize([]*dimension.Member{ne}),
	})
	nIn, nOut := 0, 0
	for a := 0; a < e.space.Size(); a++ {
		mean := e.model.Mean(s, a)
		if e.space.InScope(a, []*dimension.Member{ne}) {
			if math.Abs(mean-0.03) > 1e-12 {
				t.Errorf("in-scope mean = %v, want 0.03", mean)
			}
			nIn++
		} else {
			if mean >= 0.02 {
				t.Errorf("out-of-scope mean = %v, should drop below baseline", mean)
			}
			nOut++
		}
	}
	if nIn != 4 || nOut != 16 {
		t.Errorf("scope split = %d/%d, want 4/16", nIn, nOut)
	}
}

// TestPaperExample34 reproduces Example 3.4: salary 80 K baseline, +50% for
// the Northeast, four regions; Northeast belief 120 K, others 66 667.
func TestPaperExample34(t *testing.T) {
	loc := dimension.MustNewHierarchy("region", "region", "graduates from", "any region", []string{"region"})
	for _, r := range []string{"the Northeast", "the Midwest", "the West", "the South"} {
		loc.MustAddPath(r)
	}
	col := tableColumn(t, loc)
	_ = col
	d := salaryRegionsDataset(t, loc)
	q := olap.Query{
		Fct: olap.Avg, Col: "salary",
		GroupBy: []olap.GroupBy{{Hierarchy: loc, Level: 1}},
	}
	space, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	m, err := NewModel(space, 40000)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	ne := loc.FindMember("the Northeast")
	s := &speech.Speech{Baseline: &speech.Baseline{Value: 80000, AggName: "average salary", Format: speech.ThousandsFormat}}
	s = s.Extend(&speech.Refinement{
		Preds: []*dimension.Member{ne}, Dir: speech.Increase, Percent: 50,
		ScopeSize: space.ScopeSize([]*dimension.Member{ne}),
	})
	neIdx := space.IndexOf([]*dimension.Member{ne})
	if got := m.Mean(s, neIdx); math.Abs(got-120000) > 1e-6 {
		t.Errorf("Northeast mean = %v, want 120000", got)
	}
	mw := loc.FindMember("the Midwest")
	mwIdx := space.IndexOf([]*dimension.Member{mw})
	if got := m.Mean(s, mwIdx); math.Abs(got-66666.666666) > 1e-3 {
		t.Errorf("Midwest mean = %v, want 66666.67", got)
	}
	// The full belief is the paper's N(120000, 40000).
	b := m.Belief(s, neIdx)
	if b.Mu != m.Mean(s, neIdx) || b.Sigma != 40000 {
		t.Errorf("belief = %v", b)
	}
}

// TestBeliefBaselineConsistency is Theorem A.1 as a property test: for
// random refinement chains, the average of the induced means over all
// aggregates equals the baseline value.
func TestBeliefBaselineConsistencyProperty(t *testing.T) {
	e := newEnv(t)
	cands := e.gen.Refinements(nil)
	f := func(seed int64, nRefsSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nRefs := int(nRefsSeed) % 4
		s := e.baselineSpeech(0.02)
		for i := 0; i < nRefs; i++ {
			s = s.Extend(cands[rng.Intn(len(cands))])
		}
		means := e.model.Means(s)
		return math.Abs(stats.Mean(means)-0.02) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRewardRange(t *testing.T) {
	e := newEnv(t)
	s := e.baselineSpeech(0.02)
	r := e.model.Reward(s, 0, 0.02)
	if r <= 0 || r > 1 {
		t.Errorf("reward = %v, want in (0, 1]", r)
	}
	// A wildly wrong estimate scores lower.
	far := e.model.Reward(s, 0, 5.0)
	if far >= r {
		t.Errorf("distant estimate reward %v should be below %v", far, r)
	}
}

func TestRewardZeroEstimateBucket(t *testing.T) {
	e := newEnv(t)
	s := e.baselineSpeech(0.001)
	r := e.model.Reward(s, 0, 0)
	if r <= 0 {
		t.Error("zero estimates should still have a positive-probability bucket")
	}
}

func TestQualityRanksTruthfulSpeeches(t *testing.T) {
	e := newEnv(t)
	grand := e.result.GrandValue()
	truthful := e.baselineSpeech(stats.RoundSig(grand, 2))
	wrong := e.baselineSpeech(stats.RoundSig(grand*10, 2))
	qTrue := e.model.Quality(truthful, e.result)
	qWrong := e.model.Quality(wrong, e.result)
	if qTrue <= qWrong {
		t.Errorf("truthful baseline quality %v should beat wrong baseline %v", qTrue, qWrong)
	}
	if qTrue <= 0 || qTrue > 1 {
		t.Errorf("quality = %v out of range", qTrue)
	}
}

func TestQualityRewardsGoodRefinements(t *testing.T) {
	e := newEnv(t)
	grand := e.result.GrandValue()
	base := e.baselineSpeech(stats.RoundSig(grand, 1))
	winter := e.date.FindMember("Winter")
	goodRef := base.Extend(&speech.Refinement{
		Preds: []*dimension.Member{winter}, Dir: speech.Increase, Percent: 100,
		ScopeSize: e.space.ScopeSize([]*dimension.Member{winter}),
	})
	badRef := base.Extend(&speech.Refinement{
		Preds: []*dimension.Member{winter}, Dir: speech.Decrease, Percent: 50,
		ScopeSize: e.space.ScopeSize([]*dimension.Member{winter}),
	})
	qGood := e.model.Quality(goodRef, e.result)
	qBad := e.model.Quality(badRef, e.result)
	if qGood <= qBad {
		t.Errorf("winter-increase quality %v should beat winter-decrease %v", qGood, qBad)
	}
}

func TestQualityPanicsOnForeignResult(t *testing.T) {
	e := newEnv(t)
	other := newEnv(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign result")
		}
	}()
	e.model.Quality(e.baselineSpeech(0.02), other.result)
}

func TestMeanScopeSizeFallback(t *testing.T) {
	e := newEnv(t)
	ne := e.airport.FindMember("the North East")
	// Refinement without precomputed ScopeSize: model computes it.
	s := e.baselineSpeech(0.02)
	s = s.Extend(&speech.Refinement{Preds: []*dimension.Member{ne}, Dir: speech.Increase, Percent: 50})
	means := e.model.Means(s)
	if math.Abs(stats.Mean(means)-0.02) > 1e-12 {
		t.Error("fallback scope size should preserve consistency")
	}
}

// salaryRegionsDataset builds a 4-row dataset, one row per region.
func salaryRegionsDataset(t *testing.T, loc *dimension.Hierarchy) *olap.Dataset {
	t.Helper()
	d, err := buildRegionDataset(loc)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	return d
}
