// Package belief implements the paper's probabilistic user model (Section
// 3.4): after hearing a speech, a listener assigns each result aggregate a
// normal-distribution belief N(M(a,t), σ). The mean assignment M is
// recursive — the baseline fixes all means, each refinement shifts the
// aggregates in its scope by an additive Δ and compensates the rest so the
// average stays consistent with the baseline (Theorem A.1). Speech quality
// (Definition 2.2) is the average probability the belief assigns to the
// actual value's rounding bucket.
package belief

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/stats"
)

// Model scores speeches for one query under the user behavior model.
type Model struct {
	space *olap.Space
	sigma float64
	// BucketStep is the width of the probability bucket representing a
	// value, constant across aggregates. Example 4.3 buckets a 90 K
	// estimate as [85 K, 95 K): one significant digit of the query's
	// value scale, i.e. step 10^floor(log10(scale)). A constant width
	// keeps small aggregates from being drowned out by wide-bucket large
	// ones. Derived from σ (scale = 2σ) unless set explicitly.
	BucketStep float64
}

// SigmaFromScale derives the model's constant standard deviation from the
// query's grand-average scale: the pilot study supports σ of roughly half
// the mean (Example 3.4 uses 40 000 for an 80 000 average).
func SigmaFromScale(scale float64) float64 {
	return scale / 2
}

// NewModel creates a belief model with the given constant σ (> 0).
func NewModel(space *olap.Space, sigma float64) (*Model, error) {
	if space == nil {
		return nil, errors.New("belief: nil aggregate space")
	}
	if math.IsNaN(sigma) || sigma <= 0 {
		return nil, fmt.Errorf("belief: sigma must be positive, got %v", sigma)
	}
	return &Model{space: space, sigma: sigma, BucketStep: BucketStepForScale(2 * sigma)}, nil
}

// BucketStepForScale returns the one-significant-digit step of a value
// scale: 0.02 -> 0.01, 90 000 -> 10 000.
func BucketStepForScale(scale float64) float64 {
	if math.IsNaN(scale) || scale <= 0 {
		return 1
	}
	return math.Pow(10, math.Floor(math.Log10(scale)))
}

// Space returns the aggregate space the model scores against.
func (m *Model) Space() *olap.Space { return m.space }

// Sigma returns the model's constant standard deviation.
func (m *Model) Sigma() float64 { return m.sigma }

// Mean returns M(agg, s): the expected value the listener assigns to
// aggregate agg after hearing s. Cost is O(k) in the number of refinements
// — beliefs for single aggregates never require instantiating the full
// result, which is what makes sampling-based rewards cheap.
func (m *Model) Mean(s *speech.Speech, agg int) float64 {
	if s.Baseline == nil {
		return 0
	}
	mean := s.Baseline.Value
	n := m.space.Size()
	deltas := s.Deltas()
	for i, r := range s.Refinements {
		sz := r.ScopeSize
		if sz <= 0 {
			sz = m.space.ScopeSize(r.Preds)
		}
		var in bool
		if r.Scope != nil {
			in = r.Scope.Contains(agg) // generator-built: skip the scope-cache lookup
		} else {
			in = m.space.InScope(agg, r.Preds)
		}
		if in {
			mean += deltas[i]
		} else if n > sz {
			mean -= float64(sz) * deltas[i] / float64(n-sz)
		}
	}
	return mean
}

// Means returns M(a, s) for every aggregate.
func (m *Model) Means(s *speech.Speech) []float64 {
	out := make([]float64, m.space.Size())
	for a := range out {
		out[a] = m.Mean(s, a)
	}
	return out
}

// Belief returns the listener's distribution for aggregate agg.
func (m *Model) Belief(s *speech.Speech, agg int) stats.Normal {
	return stats.Normal{Mu: m.Mean(s, agg), Sigma: m.sigma}
}

// bucket returns the probability interval representing value v: the
// constant-width window [v - step/2, v + step/2), matching Example 4.3's
// rounding bucket and giving every aggregate equal reward headroom.
func (m *Model) bucket(v float64) stats.Interval {
	step := m.BucketStep
	if step <= 0 {
		step = BucketStepForScale(2 * m.sigma)
	}
	return stats.Interval{Lo: v - step/2, Hi: v + step/2}
}

// Reward scores how well speech s explains an estimate for aggregate agg:
// the belief probability of the estimate's rounding bucket (the return
// value of SpeechDBeval in Algorithm 3). It lies in [0, 1].
func (m *Model) Reward(s *speech.Speech, agg int, estimate float64) float64 {
	b := m.Belief(s, agg)
	iv := m.bucket(estimate)
	return b.Prob(iv.Lo, iv.Hi)
}

// Quality computes the exact speech quality of Definition 2.2 against a
// fully evaluated result: the average over aggregates of the probability
// the induced belief assigns to the actual value's bucket. Aggregates with
// no rows (NaN averages) are skipped.
func (m *Model) Quality(s *speech.Speech, result *olap.Result) float64 {
	if result.Space() != m.space {
		panic("belief: result evaluated over a different aggregate space")
	}
	var sum float64
	var n int
	for a := 0; a < m.space.Size(); a++ {
		v := result.Value(a)
		if math.IsNaN(v) {
			continue
		}
		sum += m.Reward(s, a, v)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
