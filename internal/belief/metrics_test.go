package belief

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// metricsEnv builds the standard test environment plus a truthful and a
// wrong speech.
func TestMetricsAgreeOnTruthfulVsWrong(t *testing.T) {
	e := newEnv(t)
	grand := e.result.GrandValue()
	truthful := e.baselineSpeech(stats.RoundSig(grand, 2))
	wrong := e.baselineSpeech(stats.RoundSig(grand*10, 2))

	if got, bad := e.model.LogLoss(truthful, e.result), e.model.LogLoss(wrong, e.result); got <= bad {
		t.Errorf("log loss: truthful %v should beat wrong %v", got, bad)
	}
	if got, bad := e.model.ExpectedAbsError(truthful, e.result), e.model.ExpectedAbsError(wrong, e.result); got >= bad {
		t.Errorf("expected abs error: truthful %v should be below wrong %v", got, bad)
	}
	if got, bad := e.model.CRPS(truthful, e.result), e.model.CRPS(wrong, e.result); got >= bad {
		t.Errorf("CRPS: truthful %v should be below wrong %v", got, bad)
	}
}

// TestExpectedAbsErrorClosedForm cross-checks the folded-normal formula
// against Monte Carlo sampling.
func TestExpectedAbsErrorClosedForm(t *testing.T) {
	cases := []struct{ mu, sigma, v float64 }{
		{0, 1, 0},
		{0, 1, 2},
		{5, 2, 3},
		{-1, 0.5, 1},
	}
	rng := rand.New(rand.NewSource(1))
	for _, c := range cases {
		b := stats.Normal{Mu: c.mu, Sigma: c.sigma}
		d := c.mu - c.v
		z := d / c.sigma
		closed := c.sigma*math.Sqrt(2/math.Pi)*math.Exp(-z*z/2) + d*(1-2*stdNormalCDF(-z))
		var mc float64
		const samples = 200000
		for i := 0; i < samples; i++ {
			mc += math.Abs(b.Sample(rng) - c.v)
		}
		mc /= samples
		if math.Abs(closed-mc) > 0.02*c.sigma+0.002 {
			t.Errorf("N(%v,%v) vs %v: closed %v, MC %v", c.mu, c.sigma, c.v, closed, mc)
		}
	}
}

// TestCRPSProperties: CRPS is nonnegative, zero only in the degenerate
// limit, and minimized when the belief centers on the truth.
func TestCRPSProperties(t *testing.T) {
	e := newEnv(t)
	grand := e.result.GrandValue()
	centered := e.baselineSpeech(grand)
	offAbove := e.baselineSpeech(grand * 3)
	if e.model.CRPS(centered, e.result) < 0 {
		t.Error("CRPS must be nonnegative")
	}
	if e.model.CRPS(centered, e.result) >= e.model.CRPS(offAbove, e.result) {
		t.Error("centered belief should have lower CRPS")
	}
}

// TestMetricsRankSpeechesConsistently: across a set of candidate speeches,
// the alternative metrics should broadly agree with Quality on which
// speeches are good — pairwise rank agreement above chance.
func TestMetricsRankSpeechesConsistently(t *testing.T) {
	e := newEnv(t)
	grand := e.result.GrandValue()
	cands := e.gen.Refinements(nil)
	var speeches []*struct {
		q, crps float64
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		sp := e.baselineSpeech(stats.RoundSig(grand*(0.5+rng.Float64()), 1))
		if i%2 == 0 {
			sp = sp.Extend(cands[rng.Intn(len(cands))])
		}
		speeches = append(speeches, &struct{ q, crps float64 }{
			q:    e.model.Quality(sp, e.result),
			crps: e.model.CRPS(sp, e.result),
		})
	}
	agree, total := 0, 0
	for i := 0; i < len(speeches); i++ {
		for j := i + 1; j < len(speeches); j++ {
			a, b := speeches[i], speeches[j]
			if a.q == b.q {
				continue
			}
			total++
			// Higher quality should mean lower CRPS.
			if (a.q > b.q) == (a.crps < b.crps) {
				agree++
			}
		}
	}
	if total == 0 {
		t.Skip("no comparable pairs")
	}
	if frac := float64(agree) / float64(total); frac < 0.6 {
		t.Errorf("quality/CRPS rank agreement = %.2f, want above 0.6", frac)
	}
}

func TestStdNormalHelpers(t *testing.T) {
	if math.Abs(stdNormalCDF(0)-0.5) > 1e-12 {
		t.Error("Φ(0) != 0.5")
	}
	if math.Abs(stdNormalPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Error("φ(0) wrong")
	}
}
