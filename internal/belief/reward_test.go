package belief

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dimension"
	"repro/internal/speech"
)

// randomSpeeches builds a mix of generator speeches (precomputed Scope
// bitsets) at depths 0..MaxFragments by extending random refinement chains.
func randomSpeeches(e *env, rng *rand.Rand, count int) []*speech.Speech {
	grand := e.result.GrandValue()
	bases := e.gen.BaselineCandidates(grand)
	var out []*speech.Speech
	for i := 0; i < count; i++ {
		sp := &speech.Speech{Baseline: bases[rng.Intn(len(bases))]}
		depth := rng.Intn(e.gen.Prefs.MaxFragments + 1)
		for d := 0; d < depth; d++ {
			menu := e.gen.Refinements(sp.Refinements)
			if len(menu) == 0 {
				break
			}
			sp = sp.Extend(menu[rng.Intn(len(menu))])
		}
		out = append(out, sp)
	}
	return out
}

// TestRewardKernelBitIdentical pins the kernel's exactness contract:
// RewardKernel.Reward equals Model.Reward to the last bit for generator
// speeches, hand-built speeches (nil Scope, InScope fallback), and the
// baseline-free degenerate speech, over every aggregate and randomized
// estimates. Repeated calls must stay identical (memoization must not
// drift).
func TestRewardKernelBitIdentical(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(99))
	speeches := randomSpeeches(e, rng, 40)
	// Hand-built refinement without the generator's Scope bitset: the
	// kernel must take the space.InScope fallback path.
	hand := e.baselineSpeech(e.result.GrandValue()).Extend(&speech.Refinement{
		Preds:   []*dimension.Member{e.airport.FindMember("the North East")},
		Dir:     speech.Increase,
		Percent: 50,
	})
	speeches = append(speeches, hand, &speech.Speech{})

	k := e.model.NewRewardKernel()
	for si, sp := range speeches {
		for pass := 0; pass < 2; pass++ { // second pass hits the memo
			for a := 0; a < e.space.Size(); a++ {
				est := e.result.GrandValue() * (2*rng.Float64() - 0.5)
				want := e.model.Reward(sp, a, est)
				got := k.Reward(sp, a, est)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("speech %d pass %d agg %d est %v: kernel %v (%#x), model %v (%#x)",
						si, pass, a, est, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		}
	}
}

// TestRewardKernelBucketStepOverride checks the kernel snapshots an
// explicit BucketStep the same way Model.bucket reads it.
func TestRewardKernelBucketStepOverride(t *testing.T) {
	e := newEnv(t)
	e.model.BucketStep = 0.005
	rng := rand.New(rand.NewSource(7))
	k := e.model.NewRewardKernel()
	sp := e.baselineSpeech(e.result.GrandValue())
	for a := 0; a < e.space.Size(); a++ {
		est := rng.Float64() / 10
		want := e.model.Reward(sp, a, est)
		got := k.Reward(sp, a, est)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("agg %d: kernel %v, model %v", a, got, want)
		}
	}
}
