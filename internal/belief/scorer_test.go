package belief

import (
	"math/rand"
	"testing"

	"repro/internal/dimension"
	"repro/internal/speech"
	"repro/internal/stats"
)

// strideMenu samples cap entries evenly across the menu, so the picks
// span several predicate scopes (adjacent menu entries share one scope
// and would be filtered out of depth-2 extensions as duplicates).
func strideMenu(menu []*speech.Refinement, cap int) []*speech.Refinement {
	if len(menu) <= cap {
		return menu
	}
	out := make([]*speech.Refinement, 0, cap)
	for i := 0; i < cap; i++ {
		out = append(out, menu[i*len(menu)/cap])
	}
	return out
}

// enumerateSpeeches builds every speech up to depth maxDepth from the
// generator menu (pruned to keep the test fast) over a few baselines.
func enumerateSpeeches(e *env, maxDepth, menuCap int) []*speech.Speech {
	menu := strideMenu(e.gen.Refinements(nil), menuCap)
	grand := e.result.GrandValue()
	var out []*speech.Speech
	for _, bv := range []float64{stats.RoundSig(grand, 1), stats.RoundSig(grand*2, 1)} {
		base := e.baselineSpeech(bv)
		var rec func(s *speech.Speech, depth int)
		rec = func(s *speech.Speech, depth int) {
			out = append(out, s)
			if depth == maxDepth {
				return
			}
			for _, r := range e.gen.Refinements(s.Refinements) {
				found := false
				for _, m := range menu {
					if m == r {
						found = true
						break
					}
				}
				if !found {
					continue
				}
				rec(s.Extend(r), depth+1)
			}
		}
		rec(base, 0)
	}
	return out
}

// TestScorerMatchesModelExactly pins the scorer's core guarantee: for
// every enumerated speech, Score returns a float64 bit-identical to
// Model.Quality — same additions in the same order — so any search
// comparing qualities picks the same winner either way.
func TestScorerMatchesModelExactly(t *testing.T) {
	e := newEnv(t)
	sc := e.model.NewScorer(e.result)
	speeches := enumerateSpeeches(e, 2, 8)
	if len(speeches) < 50 {
		t.Fatalf("only %d speeches enumerated; fixture too small", len(speeches))
	}
	for i, s := range speeches {
		want := e.model.Quality(s, e.result)
		got := sc.Score(s)
		if got != want {
			t.Fatalf("speech %d (%q): scorer %v != model %v (must be bit-identical)",
				i, s.MainText(), got, want)
		}
	}
}

// TestScorerMeansMatchModel checks the means vector itself, not just the
// aggregated quality.
func TestScorerMeansMatchModel(t *testing.T) {
	e := newEnv(t)
	sc := e.model.NewScorer(e.result)
	for _, s := range enumerateSpeeches(e, 2, 4) {
		sc.Reset(s)
		want := e.model.Means(s)
		got := sc.Means()
		for a := range want {
			if got[a] != want[a] {
				t.Fatalf("speech %q agg %d: scorer mean %v != model mean %v",
					s.MainText(), a, got[a], want[a])
			}
		}
	}
}

// TestScorerPushPopDFS runs the scorer the way Optimal's DFS does —
// push, recurse, pop — and checks that every intermediate state is
// bit-identical to a fresh Reset of the same prefix.
func TestScorerPushPopDFS(t *testing.T) {
	e := newEnv(t)
	sc := e.model.NewScorer(e.result)
	fresh := e.model.NewScorer(e.result)
	menu := strideMenu(e.gen.Refinements(nil), 6)
	base := e.baselineSpeech(stats.RoundSig(e.result.GrandValue(), 1))
	sc.Reset(base)

	var walk func(s *speech.Speech, depth int)
	walk = func(s *speech.Speech, depth int) {
		if got, want := sc.Quality(), fresh.Score(s); got != want {
			t.Fatalf("depth %d (%q): DFS quality %v != fresh quality %v",
				depth, s.MainText(), got, want)
		}
		if depth == 3 {
			return
		}
		for _, r := range menu {
			sc.Push(r)
			walk(s.Extend(r), depth+1)
			sc.Pop()
		}
		// Popping back must restore the exact pre-descent state.
		if got, want := sc.Quality(), fresh.Score(s); got != want {
			t.Fatalf("depth %d (%q): post-pop quality %v != %v",
				depth, s.MainText(), got, want)
		}
	}
	walk(base, 0)
}

// TestScorerHandBuiltRefinement covers the fallback path for refinements
// without a precomputed Scope bitset or ScopeSize.
func TestScorerHandBuiltRefinement(t *testing.T) {
	e := newEnv(t)
	sc := e.model.NewScorer(e.result)
	ne := e.airport.FindMember("the North East")
	winter := e.date.FindMember("Winter")
	s := e.baselineSpeech(0.02)
	s = s.Extend(&speech.Refinement{Preds: []*dimension.Member{ne}, Dir: speech.Increase, Percent: 50})
	s = s.Extend(&speech.Refinement{Preds: []*dimension.Member{winter}, Dir: speech.Decrease, Percent: 20})
	if got, want := sc.Score(s), e.model.Quality(s, e.result); got != want {
		t.Errorf("hand-built refinement: scorer %v != model %v", got, want)
	}
}

// TestScorerNoBaseline covers the zero-delta path of a baseline-less
// speech.
func TestScorerNoBaseline(t *testing.T) {
	e := newEnv(t)
	sc := e.model.NewScorer(e.result)
	menu := e.gen.Refinements(nil)
	s := &speech.Speech{}
	s = s.Extend(menu[0])
	if got, want := sc.Score(s), e.model.Quality(s, e.result); got != want {
		t.Errorf("baseline-less speech: scorer %v != model %v", got, want)
	}
}

// TestScorerRandomChains fuzzes longer chains (beyond the planner's
// fragment limit) against the reference model.
func TestScorerRandomChains(t *testing.T) {
	e := newEnv(t)
	sc := e.model.NewScorer(e.result)
	menu := e.gen.Refinements(nil)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		s := e.baselineSpeech(0.01 * float64(1+trial%5))
		for i := 0; i < rng.Intn(5); i++ {
			s = s.Extend(menu[rng.Intn(len(menu))])
		}
		if got, want := sc.Score(s), e.model.Quality(s, e.result); got != want {
			t.Fatalf("trial %d (%q): scorer %v != model %v", trial, s.MainText(), got, want)
		}
	}
}

// TestScorerPanicsOnForeignResult mirrors Model.Quality's space check.
func TestScorerPanicsOnForeignResult(t *testing.T) {
	e := newEnv(t)
	other := newEnv(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign result")
		}
	}()
	e.model.NewScorer(other.result)
}

// TestScorerPopEmptyPanics guards the stack discipline.
func TestScorerPopEmptyPanics(t *testing.T) {
	e := newEnv(t)
	sc := e.model.NewScorer(e.result)
	sc.Reset(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty Pop")
		}
	}()
	sc.Pop()
}
