package belief

import (
	"math"

	"repro/internal/olap"
	"repro/internal/speech"
)

// Alternative speech-scoring metrics. The paper's quality (Definition 2.2)
// is the average bucket probability; these variants answer "would a
// different distance between belief and data change the conclusions?" and
// power the metric-robustness experiment. All skip empty aggregates.

// LogLoss returns the mean negative log belief density at the actual
// values — the proper scoring rule counterpart of Quality. Lower is
// better; the return value is negated so that, like Quality, higher is
// better.
func (m *Model) LogLoss(s *speech.Speech, result *olap.Result) float64 {
	var sum float64
	var n int
	for a := 0; a < m.space.Size(); a++ {
		v := result.Value(a)
		if math.IsNaN(v) {
			continue
		}
		d := m.Belief(s, a).PDF(v)
		if d < 1e-300 {
			d = 1e-300
		}
		sum += math.Log(d)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ExpectedAbsError returns the mean expected absolute estimation error of
// a listener sampling from the induced beliefs (the folded-normal mean):
// for X ~ N(µ, σ) and actual v, with d = µ - v and z = d/σ,
// E|X - v| = σ·sqrt(2/π)·exp(-z²/2) + d·(1 - 2Φ(-z)). Lower is better.
func (m *Model) ExpectedAbsError(s *speech.Speech, result *olap.Result) float64 {
	var sum float64
	var n int
	for a := 0; a < m.space.Size(); a++ {
		v := result.Value(a)
		if math.IsNaN(v) {
			continue
		}
		b := m.Belief(s, a)
		d := b.Mu - v
		z := d / b.Sigma
		sum += b.Sigma*math.Sqrt(2/math.Pi)*math.Exp(-z*z/2) + d*(1-2*stdNormalCDF(-z))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CRPS returns the mean continuous ranked probability score of the
// beliefs against the actual values: for N(µ,σ) and observation v with
// z=(v-µ)/σ, CRPS = σ·(z·(2Φ(z)-1) + 2φ(z) - 1/√π). Lower is better.
func (m *Model) CRPS(s *speech.Speech, result *olap.Result) float64 {
	var sum float64
	var n int
	for a := 0; a < m.space.Size(); a++ {
		v := result.Value(a)
		if math.IsNaN(v) {
			continue
		}
		b := m.Belief(s, a)
		z := (v - b.Mu) / b.Sigma
		sum += b.Sigma * (z*(2*stdNormalCDF(z)-1) + 2*stdNormalPDF(z) - 1/math.Sqrt(math.Pi))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// stdNormalCDF is Φ.
func stdNormalCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// stdNormalPDF is φ.
func stdNormalPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }
