package baseline

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/speech"
)

func flightsSetup(t *testing.T) (*olap.Dataset, olap.Query) {
	t.Helper()
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 20000, Seed: 81})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
	return d, q
}

func TestPriorEnumeratesEverything(t *testing.T) {
	d, q := flightsSetup(t)
	out, err := NewPrior(d, q, Config{Format: speech.PercentFormat}).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize: %v", err)
	}
	// One sentence per region (5 regions x seasons enumerated inside).
	if out.Sentences != 5 {
		t.Errorf("sentences = %d, want 5", out.Sentences)
	}
	for _, region := range []string{"the North East", "the Midwest", "the South", "the West", "the United States territories"} {
		if !strings.Contains(out.Text, region) {
			t.Errorf("output missing region %q", region)
		}
	}
	for _, season := range []string{"Winter", "Spring", "Summer", "Fall"} {
		if !strings.Contains(out.Text, season) {
			t.Errorf("output missing season %q", season)
		}
	}
	if !strings.Contains(out.Text, "percent") {
		t.Error("values should be rendered as percentages")
	}
}

func TestPriorSingleDimension(t *testing.T) {
	d, _ := flightsSetup(t)
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy:        []olap.GroupBy{{Hierarchy: d.HierarchyByName("flight date"), Level: 1}},
	}
	out, err := NewPrior(d, q, Config{Format: speech.PercentFormat}).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize: %v", err)
	}
	if out.Sentences != 1 {
		t.Errorf("single-dim result should be one sentence, got %d", out.Sentences)
	}
	if !strings.HasPrefix(out.Text, "The average cancellation probability is") {
		t.Errorf("sentence start = %q", out.Text[:50])
	}
}

func TestPriorMergingShortensOutput(t *testing.T) {
	d, q := flightsSetup(t)
	plain, err := NewPrior(d, q, Config{Format: speech.PercentFormat}).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize: %v", err)
	}
	merged, err := NewPrior(d, q, Config{Format: speech.PercentFormat, MergeValues: true}).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize: %v", err)
	}
	if len(merged.Text) > len(plain.Text) {
		t.Errorf("merged output (%d chars) should not exceed plain (%d chars)",
			len(merged.Text), len(plain.Text))
	}
}

func TestPriorLengthGrowsWithDimensions(t *testing.T) {
	d, _ := flightsSetup(t)
	q2 := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
	q3 := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 2},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 2},
			{Hierarchy: d.HierarchyByName("airline"), Level: 1},
		},
	}
	out2, err := NewPrior(d, q2, Config{Format: speech.PercentFormat}).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize 2d: %v", err)
	}
	out3, err := NewPrior(d, q3, Config{Format: speech.PercentFormat}).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize 3d: %v", err)
	}
	// The exponential blow-up of Table 9: the fine-grained query's output
	// must dwarf the coarse one by more than an order of magnitude.
	if len(out3.Text) < 10*len(out2.Text) {
		t.Errorf("3-dim output (%d chars) should dwarf 2-dim output (%d chars)",
			len(out3.Text), len(out2.Text))
	}
}

func TestPriorEmptyAggregates(t *testing.T) {
	d, _ := flightsSetup(t)
	// City x month at 20k rows leaves some cells empty.
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 4},
			{Hierarchy: d.HierarchyByName("airline"), Level: 1},
		},
	}
	small, err := datagen.Flights(datagen.FlightsConfig{Rows: 500, Seed: 82})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	q.GroupBy[0].Hierarchy = small.HierarchyByName("start airport")
	q.GroupBy[1].Hierarchy = small.HierarchyByName("airline")
	out, err := NewPrior(small, q, Config{Format: speech.PercentFormat}).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize: %v", err)
	}
	if !strings.Contains(out.Text, "unknown") {
		t.Error("empty aggregates should read as unknown")
	}
}

func TestSameRounded(t *testing.T) {
	if !sameRounded(0.021, 0.019, 1) {
		t.Error("both round to 0.02")
	}
	if sameRounded(0.021, 0.029, 1) {
		t.Error("0.02 vs 0.03")
	}
	nan := func() float64 { var z float64; return z / z }()
	if !sameRounded(nan, nan, 1) || sameRounded(nan, 1, 1) {
		t.Error("NaN comparison wrong")
	}
}

func TestJoinNames(t *testing.T) {
	if joinNames(nil) != "" || joinNames([]string{"a"}) != "a" {
		t.Error("short joins wrong")
	}
	if joinNames([]string{"a", "b"}) != "a and b" {
		t.Error("pair join wrong")
	}
	if joinNames([]string{"a", "b", "c"}) != "a, b and c" {
		t.Error("triple join wrong")
	}
}

func TestPriorDefaultAggName(t *testing.T) {
	d, q := flightsSetup(t)
	q.ColDescription = ""
	out, err := NewPrior(d, q, Config{Format: speech.PercentFormat}).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize: %v", err)
	}
	if !strings.Contains(out.Text, "average cancelled") {
		t.Errorf("default agg name missing:\n%.200s", out.Text)
	}
}
