// Package baseline implements the comparison system of the paper's user
// study: the greedy relational-data vocalization algorithm of Trummer,
// Zhu and Bryan (VLDB 2017), labeled "Prior" in all experiment output.
// Unlike the holistic approach it (1) fully evaluates the query before
// speaking, (2) places no limit on speech length, and (3) enumerates every
// result aggregate, greedily merging runs of equal rounded values — the
// "bullet point" style some study participants liked and most found far
// too long on multi-dimensional results (Table 9's worst case exceeds
// fifty thousand characters).
package baseline

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/stats"
	"repro/internal/voice"
)

// Config tunes the prior vocalizer.
type Config struct {
	// Format renders values.
	Format speech.ValueFormat
	// SigDigits is the spoken precision (1 as in the paper's studies).
	SigDigits int
	// MergeValues greedily merges consecutive equal rounded values into
	// one phrase, the m_S = m_C = 1 greedy setting of the prior paper.
	MergeValues bool
	// Clock measures latency; nil means the real clock.
	Clock voice.Clock
}

// normalize fills defaults.
func (c Config) normalize() Config {
	if c.SigDigits < 1 {
		c.SigDigits = 1
	}
	if c.Clock == nil {
		c.Clock = voice.RealClock{}
	}
	return c
}

// Output reports a prior-baseline vocalization. The prior grammar is not
// the holistic speech grammar, so the output carries plain text.
type Output struct {
	// Text is the complete spoken text.
	Text string
	// Latency is the time until voice output could start (the prior
	// system evaluates the query fully first).
	Latency time.Duration
	// Sentences is the number of generated sentences.
	Sentences int
	// Truncated reports that context cancellation cut the enumeration
	// short; the text still ends at a sentence boundary and at least one
	// sentence is spoken.
	Truncated bool
}

// Prior is the 2017 greedy vocalizer adapted to OLAP results.
type Prior struct {
	dataset *olap.Dataset
	query   olap.Query
	cfg     Config
}

// NewPrior returns a prior-baseline vocalizer for the query.
func NewPrior(d *olap.Dataset, q olap.Query, cfg Config) *Prior {
	return &Prior{dataset: d, query: q, cfg: cfg.normalize()}
}

// Name identifies the approach in experiment output.
func (p *Prior) Name() string { return "prior" }

// Vocalize evaluates the query exactly and renders the full enumeration.
func (p *Prior) Vocalize() (*Output, error) {
	return p.VocalizeContext(context.Background())
}

// VocalizeContext is Vocalize bound to ctx. The enumeration — the part
// whose length explodes on multi-dimensional results — checks the context
// between sentences and truncates once it expires, always keeping at
// least the first sentence so the caller has something to speak; the
// Output is flagged Truncated then. The exact evaluation itself is not
// interruptible.
func (p *Prior) VocalizeContext(ctx context.Context) (*Output, error) {
	start := p.cfg.Clock.Now()
	result, err := olap.Evaluate(p.dataset, p.query)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	text, sentences, truncated := p.render(ctx, result)
	return &Output{
		Text:      text,
		Latency:   p.cfg.Clock.Now().Sub(start),
		Sentences: sentences,
		Truncated: truncated,
	}, nil
}

// render enumerates the result: one sentence per combination of leading
// dimension members, listing the trailing dimension's values (greedily
// merged when equal). It stops at a sentence boundary — but never before
// the first sentence — once ctx expires, reporting the truncation.
func (p *Prior) render(ctx context.Context, result *olap.Result) (string, int, bool) {
	space := result.Space()
	q := space.Query()
	aggName := q.ColDescription
	if aggName == "" {
		aggName = q.Fct.String() + " " + q.Col
	}
	nd := space.NumDims()

	truncated := false
	var sentences []string
	if nd == 1 {
		sentences = append(sentences, p.renderRun(aggName, "", space.Members(0), func(i int) float64 {
			return result.Value(space.IndexOf([]*dimension.Member{space.Members(0)[i]}))
		}))
	} else {
		// Iterate leading coordinates (all dims but the last).
		lead := make([]int, nd-1)
		for {
			if len(sentences) > 0 && ctx.Err() != nil {
				truncated = true
				break
			}
			prefix := make([]*dimension.Member, nd-1)
			var prefixNames []string
			for d := 0; d < nd-1; d++ {
				prefix[d] = space.Members(d)[lead[d]]
				prefixNames = append(prefixNames, prefix[d].Name)
			}
			last := space.Members(nd - 1)
			scope := "for " + strings.Join(prefixNames, " and ") + ", "
			sentences = append(sentences, p.renderRun(aggName, scope, last, func(i int) float64 {
				coords := append(append([]*dimension.Member{}, prefix...), last[i])
				return result.Value(space.IndexOf(coords))
			}))
			// Advance the mixed-radix counter.
			d := nd - 2
			for d >= 0 {
				lead[d]++
				if lead[d] < len(space.Members(d)) {
					break
				}
				lead[d] = 0
				d--
			}
			if d < 0 {
				break
			}
		}
	}
	return strings.Join(sentences, " "), len(sentences), truncated
}

// renderRun renders one sentence for a run of trailing-dimension members.
func (p *Prior) renderRun(aggName, scope string, members []*dimension.Member, value func(i int) float64) string {
	type group struct {
		names []string
		text  string
	}
	var groups []group
	i := 0
	for i < len(members) {
		v := value(i)
		names := []string{members[i].Name}
		j := i + 1
		if p.cfg.MergeValues {
			for j < len(members) && sameRounded(v, value(j), p.cfg.SigDigits) {
				names = append(names, members[j].Name)
				j++
			}
		}
		groups = append(groups, group{names: names, text: p.formatValue(v)})
		i = j
	}
	var parts []string
	for _, g := range groups {
		parts = append(parts, fmt.Sprintf("%s for %s", g.text, joinNames(g.names)))
	}
	sentence := fmt.Sprintf("%sthe %s is %s.", scope, aggName, joinNames(parts))
	// Capitalize the first letter.
	return strings.ToUpper(sentence[:1]) + sentence[1:]
}

// formatValue renders a value or "unknown" for empty aggregates.
func (p *Prior) formatValue(v float64) string {
	if math.IsNaN(v) {
		return "unknown"
	}
	return speech.FormatValue(v, p.cfg.Format)
}

// sameRounded reports whether two values round to the same spoken value
// (NaN equals only NaN).
func sameRounded(a, b float64, digits int) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return stats.RoundSig(a, digits) == stats.RoundSig(b, digits)
}

// joinNames joins phrases with commas and a final "and".
func joinNames(names []string) string {
	switch len(names) {
	case 0:
		return ""
	case 1:
		return names[0]
	case 2:
		return names[0] + " and " + names[1]
	default:
		return strings.Join(names[:len(names)-1], ", ") + " and " + names[len(names)-1]
	}
}
