package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/userstudy"
)

// PrintFigure3 writes Figure 3's two panels as text tables.
func PrintFigure3(w io.Writer, rows []Figure3Row) {
	fmt.Fprintln(w, "Figure 3 — latency and speech quality per query and approach")
	fmt.Fprintf(w, "%-8s %-10s %12s %9s %10s %6s\n",
		"query", "approach", "latency", "quality", "rows", "chars")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10s %12s %9.3f %10d %6d\n",
			r.Query, r.Approach, r.Latency.Round(time.Microsecond), r.Quality, r.RowsRead, r.SpeechLen)
	}
	sum := Summarize(rows)
	fmt.Fprintln(w, "means:")
	for _, a := range []string{"optimal", "holistic", "unmerged"} {
		fmt.Fprintf(w, "  %-10s latency %12s quality %6.3f\n",
			a, sum.MeanLatency[a].Round(time.Microsecond), sum.MeanQuality[a])
	}
}

// PrintTable2 writes the pilot-study aggregation next to the paper's.
func PrintTable2(w io.Writer, res userstudy.PilotResult) {
	fmt.Fprintln(w, "Table 2 — pilot study on implicit assumptions (simulated, 20 workers)")
	fmt.Fprintf(w, "%-15s %12s %14s %20s\n", "aspect", "#consistent", "#inconsistent", "paper (cons/incons)")
	for _, aspect := range userstudy.AspectOrder {
		cnt := res.PerAspect[aspect]
		paper := userstudy.PaperTable2[aspect]
		label := aspect
		if aspect == "Variance" {
			label = "Normal(σ≤µ)"
		}
		fmt.Fprintf(w, "%-15s %12d %14d %15d/%d\n",
			label, cnt.Consistent, cnt.Inconsistent, paper.Consistent, paper.Inconsistent)
	}
}

// PrintTable10 writes the per-question pilot replies.
func PrintTable10(w io.Writer, res userstudy.PilotResult) {
	fmt.Fprintln(w, "Table 10 — per-question pilot replies (simulated / paper)")
	for i, q := range userstudy.PilotQuestions {
		fmt.Fprintf(w, "%2d %-13s replies %2d/%2d/%2d  paper %2d/%2d/%2d\n",
			i+1, q.Aspect,
			res.Replies[i][0], res.Replies[i][1], res.Replies[i][2],
			q.PaperReplies[0], q.PaperReplies[1], q.PaperReplies[2])
	}
}

// PrintSpeeches writes a Table 5/13-style speech comparison.
func PrintSpeeches(w io.Writer, title string, rows []SpeechComparison) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s quality %5.3f\n  %s\n", r.Approach, r.Quality, r.Speech)
	}
}

// PrintTable6And14 writes the estimation-study results.
func PrintTable6And14(w io.Writer, studies []EstimationStudy) {
	fmt.Fprintln(w, "Table 6 — absolute error (%) per user; Table 14 — correct tendencies (%)")
	fmt.Fprintf(w, "%-10s %10s %12s  %s\n", "approach", "medianErr", "tendencies", "per-user errors")
	for _, st := range studies {
		fmt.Fprintf(w, "%-10s %10.2f %11.0f%%  ", st.Approach, st.MedianAbsError, st.TendencyAccuracy*100)
		for _, u := range st.Users {
			marker := ""
			if u.Misread {
				marker = "*"
			}
			fmt.Fprintf(w, "%.2g%s ", u.AbsError*100, marker)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(* = simulated 'increase TO x percent' misreading, cf. users 1 and 8)")
}

// PrintTable7 writes the extracted facts.
func PrintTable7(w io.Writer, facts []userstudy.Fact) {
	fmt.Fprintln(w, "Table 7 — example facts extracted from the flights data")
	for _, f := range facts {
		fmt.Fprintf(w, "%-25s %s\n", f.Dimensions, f.Text)
	}
}

// PrintTable8And9 writes preferences and speech lengths per dataset.
func PrintTable8And9(w io.Writer, studies []ExploratoryStudy) {
	fmt.Fprintln(w, "Table 8 — vocalization preferences; Table 9 — speech lengths (chars)")
	fmt.Fprintf(w, "%-8s %7s %7s %8s %6s %7s | %8s %8s %9s %9s\n",
		"data", "prior++", "prior+", "neutral", "this+", "this++",
		"thisAvg", "thisMax", "priorAvg", "priorMax")
	for _, st := range studies {
		p := st.Result.Prefs
		l := st.Result.Lengths
		fmt.Fprintf(w, "%-8s %7d %7d %8d %6d %7d | %8d %8d %9d %9d\n",
			st.Dataset, p[0], p[1], p[2], p[3], p[4],
			l.ThisAvg, l.ThisMax, l.PriorAvg, l.PriorMax)
	}
}

// PrintTable11 writes the dataset statistics.
func PrintTable11(w io.Writer, stats []DatasetStats) {
	fmt.Fprintln(w, "Table 11 — benchmark data")
	fmt.Fprintf(w, "%-22s %-45s %9s %10s\n", "data set", "dimensions", "#rows", "size")
	for _, s := range stats {
		fmt.Fprintf(w, "%-22s %-45s %9d %9.1fMB\n", s.Name, s.Dimensions, s.Rows, float64(s.Bytes)/1e6)
	}
}

// PrintTable12 writes the full region-by-season result.
func PrintTable12(w io.Writer, rows []ResultField) {
	fmt.Fprintln(w, "Table 12 — full result, region x season (sorted by cancellation probability)")
	fmt.Fprintf(w, "%-32s %-8s %12s\n", "region", "season", "cancellation")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %-8s %12.5f\n", r.Region, r.Season, r.Cancellation)
	}
}

// PrintAblation writes one ablation sweep.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s quality %6.3f\n", r.Variant, r.Quality)
	}
}
