package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/belief"
	"repro/internal/datagen"
	"repro/internal/dimension"
	"repro/internal/mcts"
	"repro/internal/olap"
	"repro/internal/sampling"
	"repro/internal/speech"
	"repro/internal/stats"
	"repro/internal/table"
)

// PlannerConfig parameterizes the planner benchmark: the exhaustive quality
// search (scalar versus incremental scorer) and UCT sampling throughput
// (sequential versus virtual-loss parallel).
type PlannerConfig struct {
	// Rows is the flight dataset size (<= 0 selects DefaultBenchFlightRows).
	Rows int
	// Seed drives dataset generation and all sampling RNGs.
	Seed int64
	// Rounds is the number of tree-sampling rounds per throughput
	// measurement (<= 0 selects 20000).
	Rounds int
	// MaxWorkers is the largest parallel worker count measured; worker
	// counts double from 2 up to it (<= 0 selects 4).
	MaxWorkers int
	// Dims selects the quality-kernel query shape: "CM" (default) breaks
	// down by city and month and "SM" by state and month — paper-scale
	// aggregate counts in the hundreds, which is what the scorer targets —
	// while "RD" is the small region-by-season query of Figure 3. Sampling
	// throughput always runs on the region-by-season tree (the query the
	// holistic planner demos actually sample).
	Dims string
	// MaxSpeeches caps the enumerated candidate set the quality kernels
	// are timed over (<= 0 selects 50000). All variants score the
	// identical set, so the cap never biases the comparison.
	MaxSpeeches int
}

// ParallelSample records one worker count of the parallel-sampling sweep.
type ParallelSample struct {
	Workers      int     `json:"workers"`
	Ns           int64   `json:"ns"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// Speedup is rounds/s relative to the sequential sampler. On a
	// single-CPU runner (see num_cpu) expect ~1x or below: virtual-loss
	// workers only help when they run on distinct cores.
	Speedup float64 `json:"speedup"`
	// Efficiency is Speedup/Workers: 1.0 means ideal linear scaling.
	Efficiency float64 `json:"efficiency"`
	// MutexWaitNs and GCPauseNs are deltas over this measurement:
	// contention evidence recorded alongside the throughput.
	MutexWaitNs int64 `json:"mutex_wait_ns"`
	GCPauseNs   int64 `json:"gc_pause_ns"`
}

// PlannerResult is the machine-readable record of the planner benchmark.
// benchrunner -exp planner writes it to BENCH_planner.json.
type PlannerResult struct {
	Rows int `json:"rows"`
	// NumCPU and Gomaxprocs pin the machine the numbers were taken on:
	// cross-machine comparisons of the parallel figures are meaningless
	// without them.
	NumCPU     int    `json:"num_cpu"`
	Gomaxprocs int    `json:"gomaxprocs"`
	Query      string `json:"query"`
	Aggregates int    `json:"aggregates"`

	// Exhaustive quality search over every valid speech, three ways:
	// legacy is the pre-optimization per-aggregate loop (member-walking
	// scope checks, per-aggregate delta recomputation), scalar is today's
	// Model.Quality (bitset scopes, memoized deltas), scorer is the
	// incremental apply/undo kernel the optimal planner uses.
	SpeechesScored    int     `json:"speeches_scored"`
	LegacyQualityNs   int64   `json:"legacy_quality_ns"`
	ScalarQualityNs   int64   `json:"scalar_quality_ns"`
	ScorerQualityNs   int64   `json:"scorer_quality_ns"`
	LegacyNsPerSpeech float64 `json:"legacy_ns_per_speech"`
	ScalarNsPerSpeech float64 `json:"scalar_ns_per_speech"`
	ScorerNsPerSpeech float64 `json:"scorer_ns_per_speech"`
	// QualitySpeedup is legacy/scorer: the end-to-end gain of this
	// optimization wave over the loop it replaced.
	QualitySpeedup float64 `json:"quality_speedup"`
	// ScorerSpeedup is scalar/scorer: the incremental kernel's gain over
	// the already-bitset per-candidate loop.
	ScorerSpeedup float64 `json:"scorer_speedup"`
	// IdenticalChoice must be true: all three searches pick the same
	// speech (the kernel changes evaluation order, not the math).
	IdenticalChoice bool   `json:"identical_choice"`
	BestSpeech      string `json:"best_speech"`

	// UCT sampling throughput at fixed rounds, on the region-by-season
	// tree (SamplingQuery).
	SamplingQuery          string           `json:"sampling_query"`
	TreeNodes              int              `json:"tree_nodes"`
	Rounds                 int              `json:"rounds"`
	SequentialNs           int64            `json:"sequential_sample_ns"`
	SequentialRoundsPerSec float64          `json:"sequential_rounds_per_sec"`
	Parallel               []ParallelSample `json:"parallel"`
	// ParallelNote explains an empty Parallel sweep: on a single-CPU
	// runner the sweep is skipped outright — a "speedup" measured there
	// is scheduler noise, not a result.
	ParallelNote string `json:"parallel_note,omitempty"`

	// Allocation accounting for the sequential sampler's path pooling.
	AllocsPerRoundPooled   float64 `json:"allocs_per_round_pooled"`
	AllocsPerRoundUnpooled float64 `json:"allocs_per_round_unpooled"`
}

// legacyQuality replicates the planner's quality loop as it stood before
// the scope bitsets and the incremental scorer: scope membership by walking
// member ancestors per aggregate per refinement, and the refinement deltas
// recomputed (and reallocated) for every aggregate. It is the honest
// baseline for QualitySpeedup; TestLegacyQualityMatchesModel pins it to
// Model.Quality.
type legacyQuality struct {
	space   *olap.Space
	sigma   float64
	step    float64
	members [][]*dimension.Member
	hiers   []*dimension.Hierarchy
	strides []int
}

func newLegacyQuality(space *olap.Space, sigma float64) *legacyQuality {
	l := &legacyQuality{
		space: space,
		sigma: sigma,
		step:  belief.BucketStepForScale(2 * sigma),
	}
	stride := 1
	l.members = make([][]*dimension.Member, space.NumDims())
	l.hiers = make([]*dimension.Hierarchy, space.NumDims())
	l.strides = make([]int, space.NumDims())
	for d := space.NumDims() - 1; d >= 0; d-- {
		ms := space.Members(d)
		l.members[d] = ms
		l.hiers[d] = ms[0].Hierarchy()
		l.strides[d] = stride
		stride *= len(ms)
	}
	return l
}

func (l *legacyQuality) inScope(idx int, preds []*dimension.Member) bool {
	for _, p := range preds {
		matched := false
		found := false
		for d := range l.members {
			if l.hiers[d] == p.Hierarchy() {
				found = true
				coord := l.members[d][(idx/l.strides[d])%len(l.members[d])]
				matched = coord.IsDescendantOf(p)
				break
			}
		}
		if found && !matched {
			return false
		}
	}
	return true
}

func (l *legacyQuality) scopeSize(preds []*dimension.Member) int {
	n := 1
	for d := range l.members {
		count := 0
		for _, m := range l.members[d] {
			all := true
			for _, p := range preds {
				if p.Hierarchy() == l.hiers[d] && !m.IsDescendantOf(p) {
					all = false
					break
				}
			}
			if all {
				count++
			}
		}
		n *= count
	}
	return n
}

func legacyDeltas(sp *speech.Speech) []float64 {
	deltas := make([]float64, len(sp.Refinements))
	if sp.Baseline == nil {
		return deltas
	}
	for i, r := range sp.Refinements {
		ref := sp.Baseline.Value
		for j := 0; j < i; j++ {
			if sp.Refinements[j].Subsumes(r) {
				ref += deltas[j]
			}
		}
		d := ref * float64(r.Percent) / 100
		if r.Dir == speech.Decrease {
			d = -d
		}
		deltas[i] = d
	}
	return deltas
}

func (l *legacyQuality) mean(sp *speech.Speech, agg int) float64 {
	if sp.Baseline == nil {
		return 0
	}
	mean := sp.Baseline.Value
	n := l.space.Size()
	deltas := legacyDeltas(sp) // per-aggregate recomputation, as before memoization
	for i, r := range sp.Refinements {
		sz := r.ScopeSize
		if sz <= 0 {
			sz = l.scopeSize(r.Preds)
		}
		if l.inScope(agg, r.Preds) {
			mean += deltas[i]
		} else if n > sz {
			mean -= float64(sz) * deltas[i] / float64(n-sz)
		}
	}
	return mean
}

func (l *legacyQuality) quality(sp *speech.Speech, result *olap.Result) float64 {
	var sum float64
	var n int
	for a := 0; a < l.space.Size(); a++ {
		v := result.Value(a)
		if math.IsNaN(v) {
			continue
		}
		b := stats.Normal{Mu: l.mean(sp, a), Sigma: l.sigma}
		sum += b.Prob(v-l.step/2, v+l.step/2)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// searchHooks lets exhaustiveSearch drive either a stateless per-candidate
// scorer (score only) or the incremental scorer (reset/push/pop around the
// DFS edges).
type searchHooks struct {
	reset func(sp *speech.Speech)
	push  func(r *speech.Refinement)
	pop   func()
	score func(sp *speech.Speech) float64
}

// exhaustiveSearch enumerates valid speeches exactly like the optimal
// planner (all baselines, all refinement chains up to the preference
// limits, DFS order) and returns the quality maximizer and the candidate
// count. limit > 0 stops the enumeration after that many candidates.
func exhaustiveSearch(gen *speech.Generator, prefs speech.Prefs, preamble *speech.Preamble, scale float64, limit int, h searchHooks) (*speech.Speech, int) {
	var best *speech.Speech
	bestQ := -1.0
	scored := 0
	var extend func(sp *speech.Speech)
	extend = func(sp *speech.Speech) {
		if limit > 0 && scored >= limit {
			return
		}
		q := h.score(sp)
		scored++
		if q > bestQ {
			bestQ = q
			best = sp
		}
		if len(sp.Refinements) >= prefs.MaxFragments {
			return
		}
		for _, r := range gen.Refinements(sp.Refinements) {
			if limit > 0 && scored >= limit {
				return
			}
			ext := sp.Extend(r)
			if ext.Valid(prefs) {
				if h.push != nil {
					h.push(r)
				}
				extend(ext)
				if h.pop != nil {
					h.pop()
				}
			}
		}
	}
	for _, b := range gen.BaselineCandidates(speech.SpeechScale(scale)) {
		if limit > 0 && scored >= limit {
			break
		}
		sp := &speech.Speech{Preamble: preamble, Baseline: b}
		if h.reset != nil {
			h.reset(sp)
		}
		extend(sp)
	}
	return best, scored
}

// Op kinds of the recorded scoring tape: the DFS's incremental-scorer
// calls, replayed during timing so enumeration overhead (candidate
// generation, validity checks) is excluded from every kernel variant.
const (
	opReset = iota
	opPush
	opPop
	opScore
)

type scoreOp struct {
	kind int
	sp   *speech.Speech
	r    *speech.Refinement
}

// Planner measures the speech planner on the flights region-by-season
// query: the exhaustive quality search three ways (legacy loop, scalar
// model, incremental scorer) and UCT sampling throughput sequential versus
// parallel, plus the sequential sampler's allocations per round.
func Planner(cfg PlannerConfig) (*PlannerResult, error) {
	rows := cfg.Rows
	if rows <= 0 {
		rows = DefaultBenchFlightRows
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 20000
	}
	maxWorkers := cfg.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = 4
	}

	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	setup := &Setup{Flights: flights, Seed: cfg.Seed}
	dims := cfg.Dims
	if dims == "" {
		dims = "CM"
	}
	var q olap.Query
	switch dims {
	case "SM", "CM":
		// State by month (level 2x2) or city by month (level 3x2): the
		// unfiltered drill-down breakdowns on both hierarchies, paper-scale
		// aggregate counts in the hundreds. City-level coordinates also make
		// the legacy loop's per-aggregate ancestor walks representative of a
		// real drill-down, where predicates sit levels above the group-by.
		level := 2
		if dims == "CM" {
			level = 3
		}
		airport := flights.HierarchyByName("start airport")
		date := flights.HierarchyByName("flight date")
		q = olap.Query{
			Fct: olap.Avg, Col: "cancelled",
			ColDescription: "average cancellation probability",
			GroupBy: []olap.GroupBy{
				{Hierarchy: airport, Level: level},
				{Hierarchy: date, Level: 2},
			},
		}
		if err := q.Validate(); err != nil {
			return nil, err
		}
	default:
		q, err = setup.FlightsQuery("-", dims)
		if err != nil {
			return nil, err
		}
	}
	space, err := olap.NewSpace(flights, q)
	if err != nil {
		return nil, err
	}
	result, err := olap.EvaluateSpace(space)
	if err != nil {
		return nil, err
	}
	scale := result.GrandValue()
	sigma := belief.SigmaFromScale(scale)
	if sigma <= 0 {
		sigma = 1
	}
	model, err := belief.NewModel(space, sigma)
	if err != nil {
		return nil, err
	}
	prefs := speech.DefaultPrefs()
	gen := speech.NewGenerator(space, prefs, speech.PercentFormat)
	preamble := gen.NewPreamble()

	// Record the optimal planner's DFS over the candidate space once as a
	// tape of scorer operations, then time the three quality kernels over
	// the identical candidate set with enumeration overhead excluded:
	// what remains is exactly the per-candidate scoring loop the issue
	// targets. All three must pick the same speech.
	maxSpeeches := cfg.MaxSpeeches
	if maxSpeeches <= 0 {
		maxSpeeches = 50000
	}
	var tape []scoreOp
	var speeches []*speech.Speech
	_, scored := exhaustiveSearch(gen, prefs, preamble, scale, maxSpeeches, searchHooks{
		reset: func(sp *speech.Speech) { tape = append(tape, scoreOp{kind: opReset, sp: sp}) },
		push:  func(r *speech.Refinement) { tape = append(tape, scoreOp{kind: opPush, r: r}) },
		pop:   func() { tape = append(tape, scoreOp{kind: opPop}) },
		score: func(sp *speech.Speech) float64 {
			tape = append(tape, scoreOp{kind: opScore, sp: sp})
			speeches = append(speeches, sp)
			return 0
		},
	})
	legacy := newLegacyQuality(space, sigma)
	argmax := func(quality func(sp *speech.Speech) float64) *speech.Speech {
		var best *speech.Speech
		bestQ := -1.0
		for _, sp := range speeches {
			if q := quality(sp); q > bestQ {
				bestQ = q
				best = sp
			}
		}
		return best
	}
	var legacyBest, scalarBest, scorerBest *speech.Speech
	legacyNs := timeBest(7, func() {
		legacyBest = argmax(func(sp *speech.Speech) float64 { return legacy.quality(sp, result) })
	})
	scalarNs := timeBest(7, func() {
		scalarBest = argmax(func(sp *speech.Speech) float64 { return model.Quality(sp, result) })
	})
	sc := model.NewScorer(result)
	scorerNs := timeBest(7, func() {
		var best *speech.Speech
		bestQ := -1.0
		for _, op := range tape {
			switch op.kind {
			case opReset:
				sc.Reset(op.sp)
			case opPush:
				sc.Push(op.r)
			case opPop:
				sc.Pop()
			case opScore:
				if q := sc.Quality(); q > bestQ {
					bestQ = q
					best = op.sp
				}
			}
		}
		scorerBest = best
	})
	identical := legacyBest != nil && scalarBest != nil && scorerBest != nil &&
		legacyBest.Text() == scorerBest.Text() && scalarBest.Text() == scorerBest.Text()

	// UCT sampling throughput on the Figure 3 region-by-season query (the
	// tree the holistic planner demos actually sample; its candidate
	// space expands fully within the node budget, so rounds measure
	// steady-state sampling, not tree growth). Estimates come from a
	// sampling cache over the full table, rewards from the belief model —
	// the same evaluation the planner runs, minus the voice pipeline.
	sampleQ, err := setup.FlightsQuery("-", "RD")
	if err != nil {
		return nil, err
	}
	sampleSpace, err := olap.NewSpace(flights, sampleQ)
	if err != nil {
		return nil, err
	}
	sampleResult, err := olap.EvaluateSpace(sampleSpace)
	if err != nil {
		return nil, err
	}
	sampleScale := sampleResult.GrandValue()
	sampleSigma := belief.SigmaFromScale(sampleScale)
	if sampleSigma <= 0 {
		sampleSigma = 1
	}
	sampleModel, err := belief.NewModel(sampleSpace, sampleSigma)
	if err != nil {
		return nil, err
	}
	sampleGen := speech.NewGenerator(sampleSpace, prefs, speech.PercentFormat)
	cache, err := sampling.NewCache(sampleSpace)
	if err != nil {
		return nil, err
	}
	batch := make([]int, 8192)
	scanner := table.NewSequentialScanner(flights.Table())
	for {
		got := table.FillBatch(scanner, batch)
		if got == 0 {
			break
		}
		cache.InsertBatch(batch[:got])
	}
	seeded := func(sp *speech.Speech, rng *rand.Rand) (float64, bool) {
		a, ok := cache.PickAggregate(rng)
		if !ok {
			return 0, false
		}
		e, ok := cache.Estimate(a, rng)
		if !ok {
			return 0, false
		}
		return sampleModel.Reward(sp, a, e), true
	}
	mkTree := func(seed int64, pooling bool) (*mcts.Tree, error) {
		rng := rand.New(rand.NewSource(seed))
		evalRng := rand.New(rand.NewSource(seed + 1))
		eval := func(sp *speech.Speech) (float64, bool) { return seeded(sp, evalRng) }
		tree, terr := mcts.NewTreeWithCap(sampleGen, speech.SpeechScale(sampleScale), eval, rng, 100000)
		if terr != nil {
			return nil, terr
		}
		tree.SeededEval = seeded
		tree.DisablePathPooling = !pooling
		return tree, nil
	}
	ctx := context.Background()
	treeNodes := 0
	measure := func(workers int) (time.Duration, error) {
		var best time.Duration
		for rep := 0; rep < 3; rep++ {
			tree, terr := mkTree(cfg.Seed+int64(rep), true)
			if terr != nil {
				return 0, terr
			}
			start := time.Now()
			if workers <= 1 {
				_, terr = tree.SampleBatch(ctx, rounds)
			} else {
				_, terr = tree.SampleParallelBatch(ctx, rounds, workers)
			}
			d := time.Since(start)
			if terr != nil {
				return 0, terr
			}
			if best == 0 || d < best {
				best = d
			}
			treeNodes = tree.NodeCount()
		}
		return best, nil
	}
	roundsPerSec := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(rounds) / d.Seconds()
	}
	seqNs, err := measure(1)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	var parallel []ParallelSample
	var parallelNote string
	if runtime.NumCPU() < 2 {
		parallelNote = "parallel sweep skipped: single-CPU runner (virtual-loss workers need distinct cores for speedup to mean anything)"
	} else {
		for w := 2; w <= maxWorkers; w *= 2 {
			probe := probeContention()
			d, merr := measure(w)
			if merr != nil {
				return nil, fmt.Errorf("experiments: %w", merr)
			}
			after := probeContention()
			ps := ParallelSample{
				Workers: w, Ns: d.Nanoseconds(), RoundsPerSec: roundsPerSec(d),
				MutexWaitNs: after.mutexWaitNs - probe.mutexWaitNs,
				GCPauseNs:   int64(after.gcPauseNs - probe.gcPauseNs),
			}
			if d > 0 {
				ps.Speedup = float64(seqNs) / float64(d)
				ps.Efficiency = ps.Speedup / float64(w)
			}
			parallel = append(parallel, ps)
		}
	}

	// Allocations per sequential round, with and without path pooling.
	allocsPerRound := func(pooling bool) (float64, error) {
		tree, terr := mkTree(cfg.Seed+17, pooling)
		if terr != nil {
			return 0, terr
		}
		// Warm up memoized texts and deltas so steady-state rounds are
		// what gets counted.
		if _, terr = tree.SampleBatch(ctx, 64); terr != nil {
			return 0, terr
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, terr = tree.SampleBatch(ctx, rounds); terr != nil {
			return 0, terr
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(rounds), nil
	}
	pooled, err := allocsPerRound(true)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	unpooled, err := allocsPerRound(false)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	perSpeech := func(d time.Duration) float64 {
		if scored == 0 {
			return 0
		}
		return float64(d.Nanoseconds()) / float64(scored)
	}
	res := &PlannerResult{
		Rows:       flights.Table().NumRows(),
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Query:      "-," + dims,
		Aggregates: space.Size(),

		SpeechesScored:    scored,
		LegacyQualityNs:   legacyNs.Nanoseconds(),
		ScalarQualityNs:   scalarNs.Nanoseconds(),
		ScorerQualityNs:   scorerNs.Nanoseconds(),
		LegacyNsPerSpeech: perSpeech(legacyNs),
		ScalarNsPerSpeech: perSpeech(scalarNs),
		ScorerNsPerSpeech: perSpeech(scorerNs),
		IdenticalChoice:   identical,

		SamplingQuery:          "-,RD",
		TreeNodes:              treeNodes,
		Rounds:                 rounds,
		SequentialNs:           seqNs.Nanoseconds(),
		SequentialRoundsPerSec: roundsPerSec(seqNs),
		Parallel:               parallel,
		ParallelNote:           parallelNote,

		AllocsPerRoundPooled:   pooled,
		AllocsPerRoundUnpooled: unpooled,
	}
	if scorerBest != nil {
		res.BestSpeech = scorerBest.MainText()
	}
	if scorerNs > 0 {
		res.QualitySpeedup = float64(legacyNs) / float64(scorerNs)
		res.ScorerSpeedup = float64(scalarNs) / float64(scorerNs)
	}
	return res, nil
}

// WriteJSON writes the result as indented JSON.
func (r *PlannerResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintPlanner prints the human-readable summary.
func PrintPlanner(w io.Writer, r *PlannerResult) {
	fmt.Fprintf(w, "Planner — %d rows, %d aggregates (%d CPUs, GOMAXPROCS %d), query %s\n",
		r.Rows, r.Aggregates, r.NumCPU, r.Gomaxprocs, r.Query)
	fmt.Fprintf(w, "  exhaustive search over %d speeches (identical choice: %v)\n",
		r.SpeechesScored, r.IdenticalChoice)
	fmt.Fprintf(w, "    legacy loop:        %10.0f ns/speech\n", r.LegacyNsPerSpeech)
	fmt.Fprintf(w, "    scalar model:       %10.0f ns/speech\n", r.ScalarNsPerSpeech)
	fmt.Fprintf(w, "    incremental scorer: %10.0f ns/speech  (%.2fx vs legacy, %.2fx vs scalar)\n",
		r.ScorerNsPerSpeech, r.QualitySpeedup, r.ScorerSpeedup)
	fmt.Fprintf(w, "  UCT sampling on %s, %d rounds (%d tree nodes)\n",
		r.SamplingQuery, r.Rounds, r.TreeNodes)
	fmt.Fprintf(w, "    sequential:         %10.0f rounds/s\n", r.SequentialRoundsPerSec)
	for _, p := range r.Parallel {
		fmt.Fprintf(w, "    %d workers:          %10.0f rounds/s  (speedup %.2fx, efficiency %.2f, mutex wait %v)\n",
			p.Workers, p.RoundsPerSec, p.Speedup, p.Efficiency, time.Duration(p.MutexWaitNs).Round(time.Microsecond))
	}
	if r.ParallelNote != "" {
		fmt.Fprintf(w, "    %s\n", r.ParallelNote)
	}
	fmt.Fprintf(w, "  allocs/round: %.1f pooled, %.1f unpooled\n",
		r.AllocsPerRoundPooled, r.AllocsPerRoundUnpooled)
}
