package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestDataScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling in short mode")
	}
	rows, err := DataScaling(1, []int{20000, 1000000})
	if err != nil {
		t.Fatalf("DataScaling: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Optimal latency grows with the table (a 50x size gap puts the scan
	// term well above measurement noise); holistic stays immediate.
	if rows[1].OptimalLatency <= rows[0].OptimalLatency {
		t.Errorf("optimal latency should grow: %v then %v",
			rows[0].OptimalLatency, rows[1].OptimalLatency)
	}
	for _, r := range rows {
		if r.HolisticLatency >= r.OptimalLatency {
			t.Errorf("%d rows: holistic %v should beat optimal %v",
				r.Rows, r.HolisticLatency, r.OptimalLatency)
		}
	}
	var buf bytes.Buffer
	PrintDataScaling(&buf, rows)
	if !strings.Contains(buf.String(), "Scaling") {
		t.Error("printout malformed")
	}
}
