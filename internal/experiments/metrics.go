package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/belief"
	"repro/internal/core"
	"repro/internal/olap"
)

// MetricRow scores one approach's speech under the quality metric of
// Definition 2.2 and three alternative belief-to-data distances.
type MetricRow struct {
	Approach string
	// Quality is the paper's metric (higher is better).
	Quality float64
	// LogLoss is the mean log belief density at the truth (higher = better).
	LogLoss float64
	// ExpAbsError is the listener's expected absolute error (lower = better).
	ExpAbsError float64
	// CRPS is the continuous ranked probability score (lower = better).
	CRPS float64
}

// MetricComparison scores the Table 5 speeches under all metrics,
// answering whether the paper's conclusions depend on its metric choice:
// every column must rank optimal ≈ holistic ahead of unmerged.
func MetricComparison(s *Setup) ([]MetricRow, error) {
	q, err := s.regionSeasonQuery()
	if err != nil {
		return nil, err
	}
	space, err := olap.NewSpace(s.Flights, q)
	if err != nil {
		return nil, err
	}
	result, err := olap.EvaluateSpace(space)
	if err != nil {
		return nil, err
	}
	model, err := belief.NewModel(space, belief.SigmaFromScale(result.GrandValue()))
	if err != nil {
		return nil, err
	}
	cfg := s.substrateConfig(s.Seed)
	var rows []MetricRow
	for _, v := range []core.Vocalizer{
		core.NewOptimal(s.Flights, q, cfg),
		core.NewHolistic(s.Flights, q, cfg),
		core.NewUnmerged(s.Flights, q, cfg),
	} {
		out, err := v.Vocalize()
		if err != nil {
			return nil, err
		}
		rows = append(rows, MetricRow{
			Approach:    v.Name(),
			Quality:     model.Quality(out.Speech, result),
			LogLoss:     model.LogLoss(out.Speech, result),
			ExpAbsError: model.ExpectedAbsError(out.Speech, result),
			CRPS:        model.CRPS(out.Speech, result),
		})
	}
	return rows, nil
}

// PrintMetricComparison writes the metric-robustness table.
func PrintMetricComparison(w io.Writer, rows []MetricRow) {
	fmt.Fprintln(w, "Metric robustness — Table 5 speeches under four belief-to-data distances")
	fmt.Fprintf(w, "%-10s %9s %10s %12s %10s\n", "approach", "quality↑", "logLoss↑", "expAbsErr↓", "CRPS↓")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9.3f %10.2f %12.5f %10.5f\n",
			r.Approach, r.Quality, r.LogLoss, r.ExpAbsError, r.CRPS)
	}
}

// AblationPlanningBudget sweeps the planning rounds available per sentence
// — the learning curve behind the pipelining argument: more overlap means
// more rounds means better speeches, saturating once estimates converge.
func AblationPlanningBudget(s *Setup) ([]AblationRow, error) {
	var rows []AblationRow
	for _, rounds := range []int{10, 50, 200, 1000, 5000} {
		rounds := rounds
		quality, err := s.runHolisticQuality(func(c *core.Config) {
			c.MaxRoundsPerSentence = rounds
			c.MinRounds = rounds
			c.SimRoundCost = time.Millisecond
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("%d rounds/sentence", rounds),
			Quality: quality,
		})
	}
	return rows, nil
}
