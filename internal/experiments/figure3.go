package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/olap"
)

// Figure3Queries are the eight query specs of Figure 3: filter member(s)
// and breakdown dimensions (R region, D date, A airline; N = North East,
// W = Winter).
var Figure3Queries = []struct{ Filter, Dims string }{
	{"-", "R"},
	{"-", "D"},
	{"-", "A"},
	{"-", "RD"},
	{"N", "D"},
	{"W", "R"},
	{"N", "DA"},
	{"W", "RA"},
}

// Figure3Row is one measurement of Figure 3: an approach's latency and
// exact speech quality on one query.
type Figure3Row struct {
	Query     string
	Approach  string
	Latency   time.Duration
	Quality   float64
	RowsRead  int64
	SpeechLen int
}

// Figure3 runs optimal, holistic, and unmerged on the eight queries and
// reports latency plus exact quality — the two panels of Figure 3.
func Figure3(s *Setup) ([]Figure3Row, error) {
	var rows []Figure3Row
	for qi, spec := range Figure3Queries {
		q, err := s.FlightsQuery(spec.Filter, spec.Dims)
		if err != nil {
			return nil, err
		}
		name := spec.Filter + "," + spec.Dims
		// Optimal pays real computation; holistic and unmerged run on the
		// simulated substrate cost model (see substrateConfig), where the
		// unmerged baseline's budget is eaten by tree pre-processing it
		// cannot overlap with voice output.
		cfg := s.substrateConfig(s.Seed + int64(qi))
		vocalizers := []core.Vocalizer{
			core.NewOptimal(s.Flights, q, s.realConfig(s.Seed+int64(qi))),
			core.NewHolistic(s.Flights, q, cfg),
			core.NewUnmerged(s.Flights, q, cfg),
		}
		for _, v := range vocalizers {
			out, err := v.Vocalize()
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", v.Name(), name, err)
			}
			quality, err := core.ExactQuality(s.Flights, q, out, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: quality of %s on %s: %w", v.Name(), name, err)
			}
			rows = append(rows, Figure3Row{
				Query:     name,
				Approach:  v.Name(),
				Latency:   out.Latency,
				Quality:   quality,
				RowsRead:  out.RowsRead,
				SpeechLen: len(out.Speech.MainText()),
			})
		}
	}
	return rows, nil
}

// Figure3Summary aggregates per-approach means for quick assertions.
type Figure3Summary struct {
	MeanLatency map[string]time.Duration
	MeanQuality map[string]float64
}

// Summarize computes the per-approach aggregate view of Figure 3 rows.
func Summarize(rows []Figure3Row) Figure3Summary {
	sumLat := map[string]time.Duration{}
	sumQ := map[string]float64{}
	count := map[string]int{}
	for _, r := range rows {
		sumLat[r.Approach] += r.Latency
		sumQ[r.Approach] += r.Quality
		count[r.Approach]++
	}
	out := Figure3Summary{
		MeanLatency: map[string]time.Duration{},
		MeanQuality: map[string]float64{},
	}
	for a, n := range count {
		out.MeanLatency[a] = sumLat[a] / time.Duration(n)
		out.MeanQuality[a] = sumQ[a] / float64(n)
	}
	return out
}

// evaluateExact is a small helper shared by table experiments.
func evaluateExact(d *olap.Dataset, q olap.Query) (*olap.Result, error) {
	r, err := olap.Evaluate(d, q)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return r, nil
}
