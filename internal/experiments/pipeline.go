package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/sampling"
	"repro/internal/table"
)

// PipelineConfig parameterizes the row-pipeline measurement.
type PipelineConfig struct {
	// Rows is the flight dataset size (<= 0 selects DefaultBenchFlightRows).
	Rows int
	// Seed drives dataset generation.
	Seed int64
	// Workers is the scan worker count for the parallel evaluation
	// (<= 0 selects runtime.GOMAXPROCS(0)).
	Workers int
	// GenWorkers is the datagen worker count (<= 1 sequential).
	GenWorkers int
}

// PipelineResult is the machine-readable record of the row-pipeline
// benchmark: classification, batch insertion, and exact evaluation
// throughputs plus the multicore speedup. benchrunner -exp pipeline writes
// it to BENCH_pipeline.json.
type PipelineResult struct {
	Rows       int `json:"rows"`
	Workers    int `json:"workers"`
	GenWorkers int `json:"gen_workers"`
	// NumCPU and Gomaxprocs pin the machine the numbers were taken on:
	// cross-machine comparisons of the parallel figures are meaningless
	// without them.
	NumCPU     int    `json:"num_cpu"`
	Gomaxprocs int    `json:"gomaxprocs"`
	Query      string `json:"query"`

	GenNs              int64   `json:"gen_ns"`
	GenRowsPerSec      float64 `json:"gen_rows_per_sec"`
	ClassifyRowsPerSec float64 `json:"classify_rows_per_sec"`
	InsertRowsPerSec   float64 `json:"insert_batch_rows_per_sec"`

	SequentialNs         int64   `json:"sequential_eval_ns"`
	ParallelNs           int64   `json:"parallel_eval_ns"`
	SequentialRowsPerSec float64 `json:"sequential_eval_rows_per_sec"`
	ParallelRowsPerSec   float64 `json:"parallel_eval_rows_per_sec"`
	Speedup              float64 `json:"speedup"`
	// ParallelNote explains a zero parallel measurement: on a single-CPU
	// runner the parallel evaluation is skipped — a "speedup" measured
	// there is scheduler noise, not a result.
	ParallelNote string `json:"parallel_note,omitempty"`
	// EvalSweep is the per-worker scan curve (1/2/4/... up to Workers),
	// embedded when the runner has more than one core.
	EvalSweep []EvalSweepPoint `json:"eval_sweep,omitempty"`
}

// EvalSweepPoint is one worker count of the embedded evaluation sweep.
type EvalSweepPoint struct {
	Workers    int     `json:"workers"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Speedup    float64 `json:"speedup"`
	// Efficiency is Speedup/Workers: 1.0 means ideal linear scaling.
	Efficiency float64 `json:"efficiency"`
}

// timeBest runs f reps times and returns the fastest duration: the least
// noisy single-shot estimator for short deterministic workloads.
func timeBest(reps int, f func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// Pipeline measures the vectorized row pipeline end to end on the flights
// region-by-season query: dataset generation, dense batch classification,
// batched cache insertion, and exact evaluation sequential versus parallel.
func Pipeline(cfg PipelineConfig) (*PipelineResult, error) {
	rows := cfg.Rows
	if rows <= 0 {
		rows = DefaultBenchFlightRows
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	genStart := time.Now()
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: rows, Seed: cfg.Seed, Workers: cfg.GenWorkers})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	genNs := time.Since(genStart).Nanoseconds()

	setup := &Setup{Flights: flights, Seed: cfg.Seed}
	q, err := setup.FlightsQuery("-", "RD")
	if err != nil {
		return nil, err
	}
	space, err := olap.NewSpace(flights, q)
	if err != nil {
		return nil, err
	}
	n := flights.Table().NumRows()
	rowsPerSec := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(n) / d.Seconds()
	}

	idxs := make([]int32, n)
	classifyNs := timeBest(3, func() { space.ClassifyRange(0, n, idxs) })

	insertNs := timeBest(3, func() {
		cache, cerr := sampling.NewCache(space)
		if cerr != nil {
			err = cerr
			return
		}
		batch := make([]int, 8192)
		scanner := table.NewSequentialScanner(flights.Table())
		for {
			got := table.FillBatch(scanner, batch)
			if got == 0 {
				break
			}
			cache.InsertBatch(batch[:got])
		}
	})
	if err != nil {
		return nil, err
	}

	seqNs := timeBest(3, func() {
		if _, eerr := olap.EvaluateSpaceSequential(space); eerr != nil {
			err = eerr
		}
	})
	var parNs time.Duration
	var parallelNote string
	if runtime.NumCPU() < 2 {
		parallelNote = "parallel evaluation skipped: single-CPU runner (workers need distinct cores for speedup to mean anything)"
	} else {
		parNs = timeBest(3, func() {
			if _, eerr := olap.EvaluateSpaceWorkers(space, workers); eerr != nil {
				err = eerr
			}
		})
	}
	if err != nil {
		return nil, err
	}

	res := &PipelineResult{
		Rows:       n,
		Workers:    workers,
		GenWorkers: cfg.GenWorkers,
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Query:      "-,RD",

		GenNs:              genNs,
		GenRowsPerSec:      rowsPerSec(time.Duration(genNs)),
		ClassifyRowsPerSec: rowsPerSec(classifyNs),
		InsertRowsPerSec:   rowsPerSec(insertNs),

		SequentialNs:         seqNs.Nanoseconds(),
		ParallelNs:           parNs.Nanoseconds(),
		SequentialRowsPerSec: rowsPerSec(seqNs),
		ParallelRowsPerSec:   rowsPerSec(parNs),
		ParallelNote:         parallelNote,
	}
	if parNs > 0 {
		res.Speedup = float64(seqNs) / float64(parNs)
	}
	if runtime.NumCPU() >= 2 {
		for w := 1; w <= workers; w *= 2 {
			var swErr error
			d := timeBest(3, func() {
				if _, eerr := olap.EvaluateSpaceWorkers(space, w); eerr != nil {
					swErr = eerr
				}
			})
			if swErr != nil {
				return nil, swErr
			}
			p := EvalSweepPoint{Workers: w, RowsPerSec: rowsPerSec(d)}
			if d > 0 && seqNs > 0 {
				p.Speedup = float64(seqNs) / float64(d)
				p.Efficiency = p.Speedup / float64(w)
			}
			res.EvalSweep = append(res.EvalSweep, p)
		}
	}
	return res, nil
}

// WriteJSON writes the result as indented JSON.
func (r *PipelineResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintPipeline prints the human-readable summary.
func PrintPipeline(w io.Writer, r *PipelineResult) {
	fmt.Fprintf(w, "Row pipeline — %d rows, %d eval workers (%d CPUs, GOMAXPROCS %d), query %s\n",
		r.Rows, r.Workers, r.NumCPU, r.Gomaxprocs, r.Query)
	fmt.Fprintf(w, "  datagen (%d workers):   %10.0f rows/s\n", max(1, r.GenWorkers), r.GenRowsPerSec)
	fmt.Fprintf(w, "  dense classification:  %10.0f rows/s\n", r.ClassifyRowsPerSec)
	fmt.Fprintf(w, "  batched cache insert:  %10.0f rows/s\n", r.InsertRowsPerSec)
	fmt.Fprintf(w, "  exact eval sequential: %10.0f rows/s\n", r.SequentialRowsPerSec)
	if r.ParallelNote != "" {
		fmt.Fprintf(w, "  exact eval parallel:   %s\n", r.ParallelNote)
	} else {
		fmt.Fprintf(w, "  exact eval parallel:   %10.0f rows/s  (speedup %.2fx)\n",
			r.ParallelRowsPerSec, r.Speedup)
	}
	for _, p := range r.EvalSweep {
		fmt.Fprintf(w, "    %d workers:           %10.0f rows/s  (speedup %.2fx, efficiency %.2f)\n",
			p.Workers, p.RowsPerSec, p.Speedup, p.Efficiency)
	}
}
