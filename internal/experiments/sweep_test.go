package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestScalingSweepSmoke runs a miniature grid and checks the invariants the
// artifact is judged by: the 1-worker parallel paths are byte-identical to
// sequential, the GOMAXPROCS=1 column always runs, every requested worker
// count appears, and out-of-range columns leave honest skip notes.
func TestScalingSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in short mode")
	}
	res, err := ScalingSweep(ScalingConfig{
		Rows: 20000, Seed: 5, Rounds: 400,
		Workers:    []int{1, 2},
		Gomaxprocs: []int{1, 512}, // 512 must be skipped on any real machine
	})
	if err != nil {
		t.Fatalf("ScalingSweep: %v", err)
	}
	if !res.OneWorkerIdentical {
		t.Error("1-worker parallel paths must be byte-identical to sequential")
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2 (workers 1 and 2 at GOMAXPROCS=1)", len(res.Points))
	}
	for i, want := range []int{1, 2} {
		p := res.Points[i]
		if p.Workers != want || p.Gomaxprocs != 1 {
			t.Errorf("point %d: workers=%d procs=%d, want workers=%d procs=1", i, p.Workers, p.Gomaxprocs, want)
		}
		if p.MctsRoundsPerSec <= 0 || p.EvalRowsPerSec <= 0 || p.SamplerRowsPerSec <= 0 {
			t.Errorf("point %d: non-positive throughput: %+v", i, p)
		}
		if p.MctsP50Ns <= 0 || p.MctsP99Ns < p.MctsP50Ns {
			t.Errorf("point %d: bad latency quantiles p50=%d p99=%d", i, p.MctsP50Ns, p.MctsP99Ns)
		}
	}
	if res.Points[0].MctsSpeedup != 1 || res.Points[0].MctsEfficiency != 1 {
		t.Errorf("1-worker point should be its own baseline: %+v", res.Points[0])
	}
	if !strings.Contains(strings.Join(res.SkipNotes, "\n"), "GOMAXPROCS=512") {
		t.Errorf("oversized GOMAXPROCS column should leave a skip note, got %v", res.SkipNotes)
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back ScalingResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Points) != len(res.Points) || !back.OneWorkerIdentical {
		t.Error("JSON round-trip lost data")
	}
	buf.Reset()
	PrintScalingSweep(&buf, res)
	if !strings.Contains(buf.String(), "Multicore scaling") {
		t.Error("printout malformed")
	}
}
