package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	rtmetrics "runtime/metrics"
	"sort"
	"time"

	"repro/internal/belief"
	"repro/internal/datagen"
	"repro/internal/mcts"
	"repro/internal/olap"
	"repro/internal/sampling"
	"repro/internal/speech"
)

// mutexWaitMetric is the cumulative time goroutines have spent blocked on
// sync.Mutex/RWMutex: the direct contention evidence each sweep point
// records alongside its throughput.
const mutexWaitMetric = "/sync/mutex/wait/total:seconds"

// contentionProbe snapshots the runtime's lock-wait and GC counters so a
// measurement can report deltas over its own interval.
type contentionProbe struct {
	mutexWaitNs int64
	gcPauseNs   uint64
	mallocs     uint64
}

func probeContention() contentionProbe {
	sample := []rtmetrics.Sample{{Name: mutexWaitMetric}}
	rtmetrics.Read(sample)
	var p contentionProbe
	if sample[0].Value.Kind() == rtmetrics.KindFloat64 {
		p.mutexWaitNs = int64(sample[0].Value.Float64() * 1e9)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.gcPauseNs = ms.PauseTotalNs
	p.mallocs = ms.Mallocs
	return p
}

// ScalingConfig parameterizes the multicore scaling sweep.
type ScalingConfig struct {
	// Rows is the flight dataset size (<= 0 selects DefaultBenchFlightRows).
	Rows int
	// Seed drives dataset generation and all sampling RNGs.
	Seed int64
	// Rounds is the number of MCTS rounds per sweep point (<= 0 selects
	// 20000).
	Rounds int
	// Workers and Gomaxprocs are the sweep axes (empty selects 1/2/4/8).
	// Points whose GOMAXPROCS exceeds the machine's CPU count are skipped
	// with a note rather than measured: throughput numbers taken on
	// oversubscribed virtual processors are scheduler noise, not results.
	Workers    []int
	Gomaxprocs []int
}

// SweepPoint is one (workers, GOMAXPROCS) cell of the scaling grid. All
// speedups are relative to the 1-worker cell at the same GOMAXPROCS, and
// efficiency divides the speedup by the worker count (1.0 = ideal linear
// scaling).
type SweepPoint struct {
	Workers    int `json:"workers"`
	Gomaxprocs int `json:"gomaxprocs"`

	// Virtual-loss parallel UCT sampling on the region-by-season tree.
	MctsRoundsPerSec   float64 `json:"mcts_rounds_per_sec"`
	MctsP50Ns          int64   `json:"mcts_p50_ns"`
	MctsP99Ns          int64   `json:"mcts_p99_ns"`
	MctsAllocsPerRound float64 `json:"mcts_allocs_per_round"`
	MctsSpeedup        float64 `json:"mcts_speedup"`
	MctsEfficiency     float64 `json:"mcts_efficiency"`

	// Exact evaluation (EvaluateSpaceWorkers) over the full table.
	EvalRowsPerSec float64 `json:"eval_rows_per_sec"`
	EvalSpeedup    float64 `json:"eval_speedup"`
	EvalEfficiency float64 `json:"eval_efficiency"`

	// Epoch-local background sampler draining the full table.
	SamplerRowsPerSec float64 `json:"sampler_rows_per_sec"`
	SamplerSpeedup    float64 `json:"sampler_speedup"`
	SamplerEfficiency float64 `json:"sampler_efficiency"`

	// Contention evidence over the whole point's measurement interval.
	MutexWaitNs int64 `json:"mutex_wait_ns"`
	GCPauseNs   int64 `json:"gc_pause_ns"`
}

// ScalingResult is the machine-readable record of the multicore scaling
// sweep. benchrunner -exp scaling writes it to BENCH_scaling.json.
type ScalingResult struct {
	Rows int `json:"rows"`
	// NumCPU and Gomaxprocs pin the machine the numbers were taken on:
	// cross-machine comparisons of scaling curves are meaningless without
	// them. Gomaxprocs is the process default outside the sweep.
	NumCPU     int    `json:"num_cpu"`
	Gomaxprocs int    `json:"gomaxprocs"`
	Query      string `json:"query"`
	Rounds     int    `json:"rounds"`
	TreeNodes  int    `json:"tree_nodes"`

	// OneWorkerIdentical must be true: the 1-worker parallel paths
	// (SampleParallelBatch, EvaluateSpaceWorkers) produce byte-identical
	// results to their sequential references, so the sweep's baseline IS
	// the sequential planner.
	OneWorkerIdentical bool `json:"one_worker_identical"`

	Points []SweepPoint `json:"points"`
	// SkipNotes lists the grid cells that were not measured and why —
	// single-CPU runners keep their honest "no speedup to report here"
	// record instead of fabricating one.
	SkipNotes []string `json:"skip_notes,omitempty"`
}

// sweepEnv bundles the fixtures every sweep point reuses.
type sweepEnv struct {
	cfg     ScalingConfig
	flights *olap.Dataset
	space   *olap.Space
	scale   float64
	model   *belief.Model
	gen     *speech.Generator
	rounds  int
}

func newSweepEnv(cfg ScalingConfig) (*sweepEnv, error) {
	rows := cfg.Rows
	if rows <= 0 {
		rows = DefaultBenchFlightRows
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 20000
	}
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	setup := &Setup{Flights: flights, Seed: cfg.Seed}
	q, err := setup.FlightsQuery("-", "RD")
	if err != nil {
		return nil, err
	}
	space, err := olap.NewSpace(flights, q)
	if err != nil {
		return nil, err
	}
	result, err := olap.EvaluateSpace(space)
	if err != nil {
		return nil, err
	}
	scale := result.GrandValue()
	sigma := belief.SigmaFromScale(scale)
	if sigma <= 0 {
		sigma = 1
	}
	model, err := belief.NewModel(space, sigma)
	if err != nil {
		return nil, err
	}
	return &sweepEnv{
		cfg:     cfg,
		flights: flights,
		space:   space,
		scale:   scale,
		model:   model,
		gen:     speech.NewGenerator(space, speech.DefaultPrefs(), speech.PercentFormat),
		rounds:  rounds,
	}, nil
}

// mkTree builds a planning tree whose rewards come from exact estimates
// jittered only by aggregate choice — the same shape the planner samples,
// with per-worker reward kernels via SeededEvalFactory.
func (e *sweepEnv) mkTree(seed int64) (*mcts.Tree, error) {
	rng := rand.New(rand.NewSource(seed))
	result, err := olap.EvaluateSpaceSequential(e.space)
	if err != nil {
		return nil, err
	}
	eval := func(sp *speech.Speech) (float64, bool) {
		a := rng.Intn(e.space.Size())
		return e.model.Reward(sp, a, result.Value(a)), true
	}
	tree, err := mcts.NewTreeWithCap(e.gen, speech.SpeechScale(e.scale), eval, rng, 100000)
	if err != nil {
		return nil, err
	}
	tree.SeededEvalFactory = func() mcts.SeededEvalFunc {
		k := e.model.NewRewardKernel()
		return func(sp *speech.Speech, wrng *rand.Rand) (float64, bool) {
			a := wrng.Intn(e.space.Size())
			return k.Reward(sp, a, result.Value(a)), true
		}
	}
	return tree, nil
}

// measureMcts runs the tree sampler at the given worker count, reporting
// total duration, sub-batch p50/p99, and allocations per round.
func (e *sweepEnv) measureMcts(workers int) (total time.Duration, p50, p99 int64, allocs float64, nodes int, err error) {
	tree, err := e.mkTree(e.cfg.Seed + 3)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	ctx := context.Background()
	// Warm up memoized speech texts and deltas.
	if _, err = tree.SampleParallelBatch(ctx, 256, workers); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	const subBatches = 32
	sub := e.rounds / subBatches
	if sub < 1 {
		sub = 1
	}
	durations := make([]time.Duration, 0, subBatches)
	rounds := 0
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < subBatches; i++ {
		start := time.Now()
		if _, err = tree.SampleParallelBatch(ctx, sub, workers); err != nil {
			return 0, 0, 0, 0, 0, err
		}
		d := time.Since(start)
		durations = append(durations, d)
		total += d
		rounds += sub
	}
	runtime.ReadMemStats(&after)
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	p50 = durations[len(durations)/2].Nanoseconds()
	p99 = durations[(len(durations)*99)/100].Nanoseconds()
	allocs = float64(after.Mallocs-before.Mallocs) / float64(rounds)
	return total, p50, p99, allocs, tree.NodeCount(), nil
}

// measureEval times EvaluateSpaceWorkers over the full table.
func (e *sweepEnv) measureEval(workers int) (time.Duration, error) {
	var err error
	d := timeBest(3, func() {
		if _, eerr := olap.EvaluateSpaceWorkers(e.space, workers); eerr != nil {
			err = eerr
		}
	})
	return d, err
}

// measureSampler drains the full table through an epoch-local background
// sampler with the given worker count.
func (e *sweepEnv) measureSampler(workers int) (time.Duration, error) {
	var best time.Duration
	for rep := 0; rep < 2; rep++ {
		es, err := sampling.NewEpochSampler(e.space, rand.New(rand.NewSource(e.cfg.Seed+7)), workers, 8192)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		es.Start()
		<-es.Done()
		d := time.Since(start)
		es.Stop()
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// oneWorkerIdentical checks the sweep's exactness baseline: the 1-worker
// parallel tree is byte-identical to the sequential sampler (same visits,
// same reward bits, same node count) and the 1-worker scan returns the
// sequential result bit for bit.
func (e *sweepEnv) oneWorkerIdentical() (bool, error) {
	seqTree, err := e.mkTree(e.cfg.Seed + 11)
	if err != nil {
		return false, err
	}
	parTree, err := e.mkTree(e.cfg.Seed + 11)
	if err != nil {
		return false, err
	}
	ctx := context.Background()
	const rounds = 2000
	if _, err := seqTree.SampleBatch(ctx, rounds); err != nil {
		return false, err
	}
	if _, err := parTree.SampleParallelBatch(ctx, rounds, 1); err != nil {
		return false, err
	}
	if seqTree.Root().Visits != parTree.Root().Visits ||
		seqTree.Root().Reward != parTree.Root().Reward ||
		seqTree.NodeCount() != parTree.NodeCount() {
		return false, nil
	}
	seq, err := olap.EvaluateSpaceSequential(e.space)
	if err != nil {
		return false, err
	}
	par, err := olap.EvaluateSpaceWorkers(e.space, 1)
	if err != nil {
		return false, err
	}
	for a := 0; a < e.space.Size(); a++ {
		if seq.Count(a) != par.Count(a) || seq.Sum(a) != par.Sum(a) {
			return false, nil
		}
	}
	return true, nil
}

// ScalingSweep measures MCTS sampling, exact evaluation, and background
// sampling throughput over a workers x GOMAXPROCS grid: the per-worker
// speedup curve the contention work is judged by. GOMAXPROCS is changed
// process-wide per column and restored afterwards, so nothing else should
// run concurrently with the sweep.
func ScalingSweep(cfg ScalingConfig) (*ScalingResult, error) {
	workersAxis := cfg.Workers
	if len(workersAxis) == 0 {
		workersAxis = []int{1, 2, 4, 8}
	}
	procsAxis := cfg.Gomaxprocs
	if len(procsAxis) == 0 {
		procsAxis = []int{1, 2, 4, 8}
	}
	env, err := newSweepEnv(cfg)
	if err != nil {
		return nil, err
	}
	res := &ScalingResult{
		Rows:       env.flights.Table().NumRows(),
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Query:      "-,RD",
		Rounds:     env.rounds,
	}
	identical, err := env.oneWorkerIdentical()
	if err != nil {
		return nil, err
	}
	res.OneWorkerIdentical = identical
	if runtime.NumCPU() < 2 {
		res.SkipNotes = append(res.SkipNotes,
			"single-CPU runner: points with workers > 1 measure oversubscription overhead on one core, not parallel speedup — expect <= 1x")
	}

	baseProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(baseProcs)
	for _, procs := range procsAxis {
		if procs > runtime.NumCPU() {
			res.SkipNotes = append(res.SkipNotes, fmt.Sprintf(
				"GOMAXPROCS=%d column skipped: machine has %d CPU(s); oversubscribed throughput is scheduler noise, not a result",
				procs, runtime.NumCPU()))
			continue
		}
		runtime.GOMAXPROCS(procs)
		// The per-column 1-worker baselines speedups are relative to.
		var mctsBase, evalBase, samplerBase time.Duration
		for _, workers := range workersAxis {
			probe := probeContention()
			mctsNs, p50, p99, allocs, nodes, err := env.measureMcts(workers)
			if err != nil {
				runtime.GOMAXPROCS(baseProcs)
				return nil, err
			}
			res.TreeNodes = nodes
			evalNs, err := env.measureEval(workers)
			if err != nil {
				runtime.GOMAXPROCS(baseProcs)
				return nil, err
			}
			samplerNs, err := env.measureSampler(workers)
			if err != nil {
				runtime.GOMAXPROCS(baseProcs)
				return nil, err
			}
			after := probeContention()
			if workers == 1 {
				mctsBase, evalBase, samplerBase = mctsNs, evalNs, samplerNs
			}
			p := SweepPoint{
				Workers:            workers,
				Gomaxprocs:         procs,
				MctsP50Ns:          p50,
				MctsP99Ns:          p99,
				MctsAllocsPerRound: allocs,
				MutexWaitNs:        after.mutexWaitNs - probe.mutexWaitNs,
				GCPauseNs:          int64(after.gcPauseNs - probe.gcPauseNs),
			}
			if mctsNs > 0 {
				p.MctsRoundsPerSec = float64(env.rounds) / mctsNs.Seconds()
			}
			if evalNs > 0 {
				p.EvalRowsPerSec = float64(res.Rows) / evalNs.Seconds()
			}
			if samplerNs > 0 {
				p.SamplerRowsPerSec = float64(res.Rows) / samplerNs.Seconds()
			}
			if mctsBase > 0 && mctsNs > 0 {
				p.MctsSpeedup = float64(mctsBase) / float64(mctsNs)
				p.MctsEfficiency = p.MctsSpeedup / float64(workers)
			}
			if evalBase > 0 && evalNs > 0 {
				p.EvalSpeedup = float64(evalBase) / float64(evalNs)
				p.EvalEfficiency = p.EvalSpeedup / float64(workers)
			}
			if samplerBase > 0 && samplerNs > 0 {
				p.SamplerSpeedup = float64(samplerBase) / float64(samplerNs)
				p.SamplerEfficiency = p.SamplerSpeedup / float64(workers)
			}
			res.Points = append(res.Points, p)
		}
	}
	runtime.GOMAXPROCS(baseProcs)
	if len(res.Points) == 0 {
		res.SkipNotes = append(res.SkipNotes,
			"no sweep points ran: every requested GOMAXPROCS exceeds the CPU count")
	}
	return res, nil
}

// WriteJSON writes the result as indented JSON.
func (r *ScalingResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintScalingSweep prints the human-readable scaling table.
func PrintScalingSweep(w io.Writer, r *ScalingResult) {
	fmt.Fprintf(w, "Multicore scaling — %d rows, %d MCTS rounds/point (%d CPUs, base GOMAXPROCS %d), query %s\n",
		r.Rows, r.Rounds, r.NumCPU, r.Gomaxprocs, r.Query)
	fmt.Fprintf(w, "  1-worker parallel paths byte-identical to sequential: %v\n", r.OneWorkerIdentical)
	if len(r.Points) > 0 {
		fmt.Fprintf(w, "  %5s %5s %14s %8s %6s %14s %8s %14s %8s %12s %10s\n",
			"procs", "wrk", "mcts rnd/s", "speedup", "eff", "eval rows/s", "speedup", "smplr rows/s", "speedup", "mutex wait", "allocs/rnd")
		for _, p := range r.Points {
			fmt.Fprintf(w, "  %5d %5d %14.0f %7.2fx %6.2f %14.0f %7.2fx %14.0f %7.2fx %12s %10.1f\n",
				p.Gomaxprocs, p.Workers,
				p.MctsRoundsPerSec, p.MctsSpeedup, p.MctsEfficiency,
				p.EvalRowsPerSec, p.EvalSpeedup,
				p.SamplerRowsPerSec, p.SamplerSpeedup,
				time.Duration(p.MutexWaitNs).Round(time.Microsecond),
				p.MctsAllocsPerRound)
		}
	}
	for _, note := range r.SkipNotes {
		fmt.Fprintf(w, "  note: %s\n", note)
	}
}
