package experiments

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/olap"
)

// TestEvaluateWorkersAcrossFigure3Queries runs the parallel evaluator over
// all eight Figure 3 query shapes and requires exact count agreement and
// 1e-9-relative sum agreement with the sequential scan for 1, 2, and
// NumCPU workers.
func TestEvaluateWorkersAcrossFigure3Queries(t *testing.T) {
	s, err := NewSetup(30000, 3)
	if err != nil {
		t.Fatalf("NewSetup: %v", err)
	}
	workerCounts := []int{1, 2, runtime.NumCPU()}
	for _, spec := range Figure3Queries {
		q, err := s.FlightsQuery(spec.Filter, spec.Dims)
		if err != nil {
			t.Fatalf("query %s,%s: %v", spec.Filter, spec.Dims, err)
		}
		space, err := olap.NewSpace(s.Flights, q)
		if err != nil {
			t.Fatalf("query %s,%s: NewSpace: %v", spec.Filter, spec.Dims, err)
		}
		seq, err := olap.EvaluateSpaceSequential(space)
		if err != nil {
			t.Fatalf("query %s,%s: sequential: %v", spec.Filter, spec.Dims, err)
		}
		for _, w := range workerCounts {
			par, err := olap.EvaluateSpaceWorkers(space, w)
			if err != nil {
				t.Fatalf("query %s,%s workers %d: %v", spec.Filter, spec.Dims, w, err)
			}
			for a := 0; a < space.Size(); a++ {
				if par.Count(a) != seq.Count(a) {
					t.Errorf("query %s,%s workers %d agg %d: count %d, sequential %d",
						spec.Filter, spec.Dims, w, a, par.Count(a), seq.Count(a))
				}
				ps, ss := par.Sum(a), seq.Sum(a)
				if math.Abs(ps-ss) > math.Abs(ss)*1e-9+1e-12 {
					t.Errorf("query %s,%s workers %d agg %d: sum %v, sequential %v",
						spec.Filter, spec.Dims, w, a, ps, ss)
				}
			}
		}
	}
}
