// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 and Appendix B) against the synthetic datasets.
// cmd/benchrunner prints them; the repository-root benchmarks wrap them in
// testing.B harnesses. EXPERIMENTS.md records paper-versus-measured for
// each experiment.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

// Setup holds the shared datasets and configuration of an experiment run.
type Setup struct {
	// Flights is the large dataset (Table 11: 5.3 M rows in the paper;
	// configurable here).
	Flights *olap.Dataset
	// Salaries is the small dataset (320 rows).
	Salaries *olap.Dataset
	// Seed drives all randomized components.
	Seed int64
}

// DefaultBenchFlightRows keeps experiment runtimes moderate; pass
// datagen.PaperFlightRows to reproduce at full paper scale.
const DefaultBenchFlightRows = 200000

// NewSetup generates both datasets. flightRows <= 0 selects
// DefaultBenchFlightRows.
func NewSetup(flightRows int, seed int64) (*Setup, error) {
	if flightRows <= 0 {
		flightRows = DefaultBenchFlightRows
	}
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: flightRows, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	salaries, err := datagen.Salaries(datagen.SalariesConfig{Seed: seed + 1})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Setup{Flights: flights, Salaries: salaries, Seed: seed}, nil
}

// FlightsQuery builds a flight query from a Figure 3 style spec: filter
// ("" , "N" for the North East, "W" for Winter) and breakdown dimensions
// ("R" region, "D" date/season, "A" airline).
func (s *Setup) FlightsQuery(filter, dims string) (olap.Query, error) {
	airport := s.Flights.HierarchyByName("start airport")
	date := s.Flights.HierarchyByName("flight date")
	airline := s.Flights.HierarchyByName("airline")
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
	}
	switch filter {
	case "", "-":
	case "N":
		q.Filters = append(q.Filters, airport.FindMember("the North East"))
	case "W":
		q.Filters = append(q.Filters, date.FindMember("Winter"))
	default:
		return q, fmt.Errorf("experiments: unknown filter %q", filter)
	}
	for _, c := range dims {
		switch c {
		case 'R':
			level := 1
			if filter == "N" {
				level = 2 // inside a region, break down by state
			}
			q.GroupBy = append(q.GroupBy, olap.GroupBy{Hierarchy: airport, Level: level})
		case 'D':
			level := 1
			if filter == "W" {
				level = 2 // inside a season, break down by month
			}
			q.GroupBy = append(q.GroupBy, olap.GroupBy{Hierarchy: date, Level: level})
		case 'A':
			q.GroupBy = append(q.GroupBy, olap.GroupBy{Hierarchy: airline, Level: 1})
		default:
			return q, fmt.Errorf("experiments: unknown dimension %q", string(c))
		}
	}
	if err := q.Validate(); err != nil {
		return q, err
	}
	return q, nil
}

// substrateConfig models the paper's execution substrate on a simulated
// clock: one planning round (a 64-row read plus tree samples) costs 1 ms
// and each search-tree node costs 10 µs to build — Java-plus-Postgres-era
// throughputs, documented in DESIGN.md. Under this cost model, playback of
// a sentence affords a few thousand planning rounds, while the unmerged
// baseline's 500 ms budget is largely consumed by the O(m^k) tree
// pre-processing it cannot overlap with anything.
func (s *Setup) substrateConfig(seed int64) core.Config {
	return core.Config{
		Format:       speech.PercentFormat,
		Seed:         seed,
		Clock:        voice.NewSimClock(),
		SimRoundCost: time.Millisecond,
		SimNodeCost:  10 * time.Microsecond,
		MaxTreeNodes: 100000,
	}
}

// realConfig runs on the real clock for honest wall-time latency (used by
// the optimal baseline, whose cost is actual computation).
func (s *Setup) realConfig(seed int64) core.Config {
	return core.Config{
		Format:       speech.PercentFormat,
		Seed:         seed,
		Clock:        voice.RealClock{},
		MaxTreeNodes: 100000,
	}
}

// simConfig runs on the simulated clock (used where wall-clock latency is
// irrelevant and determinism matters).
func (s *Setup) simConfig(seed int64) core.Config {
	return core.Config{
		Format:               speech.PercentFormat,
		Seed:                 seed,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 5000,
		SamplesPerRound:      8,
		MaxTreeNodes:         100000,
	}
}
