package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// testSetup shares one small setup across the package tests.
var sharedSetup *Setup

func setup(t *testing.T) *Setup {
	t.Helper()
	if sharedSetup == nil {
		s, err := NewSetup(60000, 1)
		if err != nil {
			t.Fatalf("NewSetup: %v", err)
		}
		sharedSetup = s
	}
	return sharedSetup
}

func TestFlightsQuerySpecs(t *testing.T) {
	s := setup(t)
	for _, spec := range Figure3Queries {
		q, err := s.FlightsQuery(spec.Filter, spec.Dims)
		if err != nil {
			t.Errorf("spec %s,%s: %v", spec.Filter, spec.Dims, err)
			continue
		}
		if err := s.Flights.ValidateQuery(q); err != nil {
			t.Errorf("spec %s,%s invalid: %v", spec.Filter, spec.Dims, err)
		}
	}
	if _, err := s.FlightsQuery("X", "R"); err == nil {
		t.Error("unknown filter should fail")
	}
	if _, err := s.FlightsQuery("-", "Z"); err == nil {
		t.Error("unknown dimension should fail")
	}
}

// TestFigure3Shape asserts the published shape: optimal latency dominates
// everything, holistic stays fastest to first output, and unmerged quality
// trails the other two.
func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 3 in short mode")
	}
	s := setup(t)
	rows, err := Figure3(s)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(rows) != len(Figure3Queries)*3 {
		t.Fatalf("rows = %d, want %d", len(rows), len(Figure3Queries)*3)
	}
	sum := Summarize(rows)
	if sum.MeanLatency["holistic"] >= sum.MeanLatency["optimal"] {
		t.Errorf("holistic latency %v should beat optimal %v",
			sum.MeanLatency["holistic"], sum.MeanLatency["optimal"])
	}
	if sum.MeanLatency["unmerged"] < 400*time.Millisecond {
		t.Errorf("unmerged latency %v should sit at its 500 ms budget",
			sum.MeanLatency["unmerged"])
	}
	if sum.MeanQuality["holistic"] < 0.6*sum.MeanQuality["optimal"] {
		t.Errorf("holistic quality %v too far below optimal %v",
			sum.MeanQuality["holistic"], sum.MeanQuality["optimal"])
	}
	var buf bytes.Buffer
	PrintFigure3(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("printout malformed")
	}
}

func TestTable2AndPrint(t *testing.T) {
	s := setup(t)
	res := Table2(s)
	var buf bytes.Buffer
	PrintTable2(&buf, res)
	PrintTable10(&buf, res)
	out := buf.String()
	for _, frag := range []string{"Table 2", "Symmetry", "Normal", "Table 10"} {
		if !strings.Contains(out, frag) {
			t.Errorf("printout missing %q", frag)
		}
	}
}

func TestTable5Speeches(t *testing.T) {
	s := setup(t)
	rows, err := Table5(s)
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("approaches = %d, want 3", len(rows))
	}
	byName := map[string]SpeechComparison{}
	for _, r := range rows {
		byName[r.Approach] = r
		if r.Speech == "" {
			t.Errorf("%s produced empty speech", r.Approach)
		}
	}
	// Table 5's quality ordering: optimal ≈ holistic >> unmerged.
	if byName["holistic"].Quality < 0.5*byName["optimal"].Quality {
		t.Errorf("holistic quality %v too far below optimal %v",
			byName["holistic"].Quality, byName["optimal"].Quality)
	}
	if byName["unmerged"].Quality > byName["optimal"].Quality {
		t.Errorf("starved unmerged %v should not beat optimal %v",
			byName["unmerged"].Quality, byName["optimal"].Quality)
	}
	var buf bytes.Buffer
	PrintSpeeches(&buf, "Table 5", rows)
	if !strings.Contains(buf.String(), "cancellation probability") {
		t.Error("printout missing speech text")
	}
}

func TestTable6And14(t *testing.T) {
	s := setup(t)
	studies, err := Table6And14(s)
	if err != nil {
		t.Fatalf("Table6And14: %v", err)
	}
	if len(studies) != 3 {
		t.Fatalf("studies = %d, want 3", len(studies))
	}
	byName := map[string]EstimationStudy{}
	for _, st := range studies {
		byName[st.Approach] = st
		if len(st.Users) != 8 {
			t.Errorf("%s users = %d, want 8", st.Approach, len(st.Users))
		}
	}
	// Table 6 ordering: optimal and holistic beat unmerged on median error.
	if byName["optimal"].MedianAbsError >= byName["unmerged"].MedianAbsError {
		t.Errorf("optimal error %v should beat unmerged %v",
			byName["optimal"].MedianAbsError, byName["unmerged"].MedianAbsError)
	}
	if byName["holistic"].MedianAbsError >= byName["unmerged"].MedianAbsError {
		t.Errorf("holistic error %v should beat unmerged %v",
			byName["holistic"].MedianAbsError, byName["unmerged"].MedianAbsError)
	}
	// Table 14: good speeches must order result fields better than chance.
	// (The unmerged baseline's tendencies are luck-of-the-refinement — in
	// the paper it landed at 54%, and a wrong-magnitude speech can still
	// point the right way — so only the error ordering above is asserted
	// across approaches.)
	if byName["holistic"].TendencyAccuracy <= 0.5 {
		t.Errorf("holistic tendencies %v should beat chance", byName["holistic"].TendencyAccuracy)
	}
	if byName["optimal"].TendencyAccuracy <= 0.5 {
		t.Errorf("optimal tendencies %v should beat chance", byName["optimal"].TendencyAccuracy)
	}
	var buf bytes.Buffer
	PrintTable6And14(&buf, studies)
	if !strings.Contains(buf.String(), "Table 6") {
		t.Error("printout malformed")
	}
}

func TestTable7Facts(t *testing.T) {
	s := setup(t)
	facts, err := Table7(s)
	if err != nil {
		t.Fatalf("Table7: %v", err)
	}
	if len(facts) != 3 {
		t.Fatalf("facts = %d", len(facts))
	}
	var buf bytes.Buffer
	PrintTable7(&buf, facts)
	if !strings.Contains(buf.String(), "Winter") {
		t.Error("facts should mention the Winter effect")
	}
}

func TestTable8And9(t *testing.T) {
	if testing.Short() {
		t.Skip("exploratory study in short mode")
	}
	s := setup(t)
	studies, err := Table8And9(s, 4)
	if err != nil {
		t.Fatalf("Table8And9: %v", err)
	}
	if len(studies) != 2 {
		t.Fatalf("studies = %d, want 2", len(studies))
	}
	for _, st := range studies {
		if st.Result.Lengths.PriorAvg <= st.Result.Lengths.ThisAvg {
			t.Errorf("%s: prior avg %d should exceed this avg %d",
				st.Dataset, st.Result.Lengths.PriorAvg, st.Result.Lengths.ThisAvg)
		}
	}
	// Table 9's flights blow-up: prior max dwarfs ours by an order of
	// magnitude on the multi-dimensional dataset.
	fl := studies[1].Result.Lengths
	if fl.PriorMax < 5*fl.ThisMax {
		t.Errorf("flights prior max %d should dwarf this max %d", fl.PriorMax, fl.ThisMax)
	}
	var buf bytes.Buffer
	PrintTable8And9(&buf, studies)
	if !strings.Contains(buf.String(), "Table 8") {
		t.Error("printout malformed")
	}
}

func TestTable11Stats(t *testing.T) {
	s := setup(t)
	stats := Table11(s)
	if len(stats) != 2 {
		t.Fatalf("stats = %d", len(stats))
	}
	if stats[0].Rows != 320 {
		t.Errorf("salary rows = %d, want 320", stats[0].Rows)
	}
	if stats[1].Rows != 60000 {
		t.Errorf("flight rows = %d", stats[1].Rows)
	}
	var buf bytes.Buffer
	PrintTable11(&buf, stats)
	if !strings.Contains(buf.String(), "Table 11") {
		t.Error("printout malformed")
	}
}

func TestTable12MatchesPlantedData(t *testing.T) {
	s := setup(t)
	rows, err := Table12(s)
	if err != nil {
		t.Fatalf("Table12: %v", err)
	}
	if len(rows) != 20 {
		t.Fatalf("fields = %d, want 20", len(rows))
	}
	// Sorted descending; the top row must be NE/Winter as in the paper.
	if rows[0].Region != "the North East" || rows[0].Season != "Winter" {
		t.Errorf("top field = %s/%s, want the North East/Winter", rows[0].Region, rows[0].Season)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Cancellation > rows[i-1].Cancellation {
			t.Fatal("rows not sorted descending")
		}
	}
	var buf bytes.Buffer
	PrintTable12(&buf, rows)
	if !strings.Contains(buf.String(), "Table 12") {
		t.Error("printout malformed")
	}
}

func TestTable13Speeches(t *testing.T) {
	if testing.Short() {
		t.Skip("table 13 in short mode")
	}
	s := setup(t)
	rows, err := Table13(s)
	if err != nil {
		t.Fatalf("Table13: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("approaches = %d", len(rows))
	}
}

func TestPriorOnFlights(t *testing.T) {
	s := setup(t)
	cmp, err := PriorOnFlights(s)
	if err != nil {
		t.Fatalf("PriorOnFlights: %v", err)
	}
	if cmp.SpeechLen <= 300 {
		t.Errorf("prior speech length %d should exceed our 300-char cap", cmp.SpeechLen)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in short mode")
	}
	s := setup(t)

	uct, err := AblationUCTVsUniform(s)
	if err != nil {
		t.Fatalf("UCT ablation: %v", err)
	}
	if len(uct) != 2 {
		t.Fatal("UCT ablation should have two variants")
	}

	res, err := AblationResample(s)
	if err != nil {
		t.Fatalf("resample ablation: %v", err)
	}
	if len(res) != 4 {
		t.Fatalf("resample variants = %d", len(res))
	}
	// The running mean must beat the 10-sample resample on a 0/1 measure.
	var runningQ, resample10Q float64
	for _, r := range res {
		switch r.Variant {
		case "running-mean":
			runningQ = r.Quality
		case "resample-10":
			resample10Q = r.Quality
		}
	}
	if runningQ <= resample10Q {
		t.Errorf("running-mean quality %v should beat resample-10 %v", runningQ, resample10Q)
	}

	rel, err := AblationRelativeVsAbsolute(s)
	if err != nil {
		t.Fatalf("relative ablation: %v", err)
	}
	if len(rel) != 2 {
		t.Fatal("relative ablation should have two variants")
	}

	sig, err := AblationSigma(s)
	if err != nil {
		t.Fatalf("sigma ablation: %v", err)
	}
	if len(sig) != 4 {
		t.Fatalf("sigma variants = %d", len(sig))
	}

	frag, err := AblationFragments(s)
	if err != nil {
		t.Fatalf("fragments ablation: %v", err)
	}
	if len(frag) != 3 {
		t.Fatalf("fragment variants = %d", len(frag))
	}

	warm, err := AblationWarmStart(s)
	if err != nil {
		t.Fatalf("warm ablation: %v", err)
	}
	if len(warm) != 2 {
		t.Fatalf("warm variants = %d", len(warm))
	}
	// The materialized view must be competitive with on-line sampling.
	if warm[1].Quality < 0.5*warm[0].Quality {
		t.Errorf("view quality %v too far below on-line %v", warm[1].Quality, warm[0].Quality)
	}

	var buf bytes.Buffer
	PrintAblation(&buf, "UCT vs uniform", uct)
	if !strings.Contains(buf.String(), "quality") {
		t.Error("ablation printout malformed")
	}
}

func TestMetricComparison(t *testing.T) {
	s := setup(t)
	rows, err := MetricComparison(s)
	if err != nil {
		t.Fatalf("MetricComparison: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]MetricRow{}
	for _, r := range rows {
		byName[r.Approach] = r
	}
	opt, unm := byName["optimal"], byName["unmerged"]
	// Every metric must preserve the headline ordering.
	if opt.Quality <= unm.Quality {
		t.Error("quality ordering broken")
	}
	if opt.LogLoss <= unm.LogLoss {
		t.Error("log-loss ordering broken")
	}
	if opt.ExpAbsError >= unm.ExpAbsError {
		t.Error("expected-abs-error ordering broken")
	}
	if opt.CRPS >= unm.CRPS {
		t.Error("CRPS ordering broken")
	}
	var buf bytes.Buffer
	PrintMetricComparison(&buf, rows)
	if !strings.Contains(buf.String(), "CRPS") {
		t.Error("printout malformed")
	}
}

func TestAblationPlanningBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("budget sweep in short mode")
	}
	s := setup(t)
	rows, err := AblationPlanningBudget(s)
	if err != nil {
		t.Fatalf("AblationPlanningBudget: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("variants = %d", len(rows))
	}
	// The learning curve: the largest budget must beat the smallest.
	if rows[len(rows)-1].Quality <= rows[0].Quality {
		t.Errorf("5000 rounds (%v) should beat 10 rounds (%v)",
			rows[len(rows)-1].Quality, rows[0].Quality)
	}
}
