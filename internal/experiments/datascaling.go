package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

// DataScalingRow measures both approaches' real latency at one dataset size.
type DataScalingRow struct {
	Rows             int
	OptimalLatency   time.Duration
	HolisticLatency  time.Duration
	OptimalViolation bool // above the 500 ms interactivity threshold
}

// DataScaling measures how time-to-first-output grows with data volume — the
// paper's motivating claim: exact evaluation before speaking cannot stay
// interactive as data grows, while the holistic pipeline's latency is
// independent of table size. Both run with honest wall-clock timing (no
// substrate simulation); the holistic run is capped after a few planning
// rounds since only its latency matters here.
//
// An honest reproduction note: Go's in-memory scan is fast enough that the
// coarse query stays interactive even at the paper's 5.3 M rows — the scan
// term grows linearly, but from a low base. What breaks the 500 ms budget
// in this reproduction is the plan-space term on 3-dimensional queries
// (Figure 3's N,DA and W,RA rows); on the paper's Java/Postgres substrate
// the scan term alone sufficed.
func DataScaling(seed int64, sizes []int) ([]DataScalingRow, error) {
	if len(sizes) == 0 {
		sizes = []int{50000, 200000, 1000000, datagen.PaperFlightRows}
	}
	var out []DataScalingRow
	for _, rows := range sizes {
		d, err := datagen.Flights(datagen.FlightsConfig{Rows: rows, Seed: seed})
		if err != nil {
			return nil, err
		}
		// The region x season query: its plan space is constant, so the
		// optimal baseline's latency growth isolates the full-scan cost.
		q := olap.Query{
			Fct: olap.Avg, Col: "cancelled",
			ColDescription: "average cancellation probability",
			GroupBy: []olap.GroupBy{
				{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
				{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
			},
		}
		cfg := core.Config{
			Format:               speech.PercentFormat,
			Seed:                 seed,
			Clock:                voice.RealClock{},
			MaxRoundsPerSentence: 8,
			MinRounds:            4,
			MaxTreeNodes:         100000,
		}
		// Minimum over repetitions: scheduling and GC noise otherwise
		// swamps the scan term on small tables.
		const reps = 3
		var oLat, hLat time.Duration
		for i := 0; i < reps; i++ {
			oOut, err := core.NewOptimal(d, q, cfg).Vocalize()
			if err != nil {
				return nil, err
			}
			hOut, err := core.NewHolistic(d, q, cfg).Vocalize()
			if err != nil {
				return nil, err
			}
			if i == 0 || oOut.Latency < oLat {
				oLat = oOut.Latency
			}
			if i == 0 || hOut.Latency < hLat {
				hLat = hOut.Latency
			}
		}
		out = append(out, DataScalingRow{
			Rows:             rows,
			OptimalLatency:   oLat,
			HolisticLatency:  hLat,
			OptimalViolation: oLat > core.InteractivityThreshold,
		})
	}
	return out, nil
}

// PrintDataScaling writes the scaling table.
func PrintDataScaling(w io.Writer, rows []DataScalingRow) {
	fmt.Fprintln(w, "Scaling — time to first voice output vs data volume (region x season, real clock)")
	fmt.Fprintf(w, "%10s %16s %16s %s\n", "rows", "optimal", "holistic", "optimal interactive?")
	for _, r := range rows {
		status := "yes"
		if r.OptimalViolation {
			status = "NO (above 500 ms)"
		}
		fmt.Fprintf(w, "%10d %16s %16s %s\n",
			r.Rows,
			r.OptimalLatency.Round(time.Millisecond),
			r.HolisticLatency.Round(time.Microsecond),
			status)
	}
}
