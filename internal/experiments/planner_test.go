package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"repro/internal/belief"
	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/speech"
)

// TestLegacyQualityMatchesModel pins the benchmark's legacy replica (the
// pre-bitset, pre-scorer quality loop) to today's Model.Quality: the
// optimizations changed evaluation cost, never the math, so the two must
// agree exactly on every enumerated speech. A drifting replica would make
// the reported QualitySpeedup meaningless.
func TestLegacyQualityMatchesModel(t *testing.T) {
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: 8000, Seed: 11})
	if err != nil {
		t.Fatalf("datagen: %v", err)
	}
	setup := &Setup{Flights: flights, Seed: 11}
	q, err := setup.FlightsQuery("-", "RD")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	space, err := olap.NewSpace(flights, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	result, err := olap.EvaluateSpace(space)
	if err != nil {
		t.Fatalf("EvaluateSpace: %v", err)
	}
	scale := result.GrandValue()
	sigma := belief.SigmaFromScale(scale)
	model, err := belief.NewModel(space, sigma)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	legacy := newLegacyQuality(space, sigma)
	prefs := speech.DefaultPrefs()
	gen := speech.NewGenerator(space, prefs, speech.PercentFormat)
	preamble := gen.NewPreamble()

	checked := 0
	exhaustiveSearch(gen, prefs, preamble, scale, 0, searchHooks{
		score: func(sp *speech.Speech) float64 {
			want := model.Quality(sp, result)
			got := legacy.quality(sp, result)
			if got != want {
				t.Fatalf("legacy quality %v, model %v for %q", got, want, sp.MainText())
			}
			checked++
			return want
		},
	})
	if checked < 50 {
		t.Fatalf("only %d speeches checked; enumeration too small", checked)
	}
}

// TestPlannerSmoke runs the full planner benchmark at toy scale and checks
// the result's internal consistency.
func TestPlannerSmoke(t *testing.T) {
	r, err := Planner(PlannerConfig{Rows: 8000, Seed: 12, Rounds: 300, MaxWorkers: 2, Dims: "RD"})
	if err != nil {
		t.Fatalf("Planner: %v", err)
	}
	if !r.IdenticalChoice {
		t.Error("the three searches should choose the identical speech")
	}
	if r.SpeechesScored < 50 {
		t.Errorf("scored only %d speeches", r.SpeechesScored)
	}
	if r.QualitySpeedup <= 1 {
		t.Errorf("incremental scorer should beat the legacy loop, got %.2fx", r.QualitySpeedup)
	}
	if r.SequentialRoundsPerSec <= 0 {
		t.Error("sequential sampling throughput missing")
	}
	if runtime.NumCPU() < 2 {
		// Single-CPU runners skip the sweep and must say so.
		if len(r.Parallel) != 0 || r.ParallelNote == "" {
			t.Fatalf("single-CPU run should skip the sweep with a note, got %+v / %q", r.Parallel, r.ParallelNote)
		}
	} else {
		if len(r.Parallel) != 1 || r.Parallel[0].Workers != 2 {
			t.Fatalf("expected one parallel sample at 2 workers, got %+v", r.Parallel)
		}
		if r.Parallel[0].RoundsPerSec <= 0 {
			t.Error("parallel sampling throughput missing")
		}
	}
	if r.Gomaxprocs <= 0 {
		t.Error("gomaxprocs stamp missing")
	}
	if r.AllocsPerRoundPooled <= 0 || r.AllocsPerRoundUnpooled <= 0 {
		t.Error("allocation accounting missing")
	}
	if r.AllocsPerRoundPooled > r.AllocsPerRoundUnpooled {
		t.Errorf("pooling should not allocate more: %.1f pooled vs %.1f unpooled",
			r.AllocsPerRoundPooled, r.AllocsPerRoundUnpooled)
	}

	var buf bytes.Buffer
	PrintPlanner(&buf, r)
	if !strings.Contains(buf.String(), "incremental scorer") {
		t.Errorf("summary missing scorer line:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "\"quality_speedup\"") {
		t.Error("JSON missing quality_speedup field")
	}
}
