package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/olap"
	"repro/internal/sampling"
)

// AblationRow is one configuration's quality (and latency surrogate) in an
// ablation sweep.
type AblationRow struct {
	Variant string
	Quality float64
}

// runHolisticQuality vocalizes the region-by-season query with the given
// config and returns exact quality, averaged over a few seeds to smooth
// sampling noise.
func (s *Setup) runHolisticQuality(mutate func(*core.Config)) (float64, error) {
	q, err := s.regionSeasonQuery()
	if err != nil {
		return 0, err
	}
	const runs = 3
	var sum float64
	for i := 0; i < runs; i++ {
		cfg := s.simConfig(s.Seed + int64(100+i))
		if mutate != nil {
			mutate(&cfg)
		}
		out, err := core.NewHolistic(s.Flights, q, cfg).Vocalize()
		if err != nil {
			return 0, fmt.Errorf("experiments: ablation: %w", err)
		}
		quality, err := core.ExactQuality(s.Flights, q, out, cfg)
		if err != nil {
			return 0, err
		}
		sum += quality
	}
	return sum / runs, nil
}

// AblationUCTVsUniform compares UCT child selection against uniform random
// tree sampling under the same sample budget — the exploitation half of
// the paper's prioritization argument.
func AblationUCTVsUniform(s *Setup) ([]AblationRow, error) {
	uct, err := s.runHolisticQuality(nil)
	if err != nil {
		return nil, err
	}
	uniform, err := s.runHolisticQuality(func(c *core.Config) { c.UniformTreePolicy = true })
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Variant: "UCT", Quality: uct},
		{Variant: "uniform", Quality: uniform},
	}, nil
}

// AblationResample compares the running-mean estimator against the paper's
// literal fixed-size resampling at several sizes. Small resamples quantize
// Bernoulli measures and destroy reward discrimination.
func AblationResample(s *Setup) ([]AblationRow, error) {
	rows := []AblationRow{}
	running, err := s.runHolisticQuality(nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{Variant: "running-mean", Quality: running})
	for _, size := range []int{10, 100, 1000} {
		size := size
		q, err := s.runHolisticQuality(func(c *core.Config) {
			c.ResampleEstimates = true
			c.ResampleSize = size
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: fmt.Sprintf("resample-%d", size), Quality: q})
	}
	return rows, nil
}

// AblationRelativeVsAbsolute compares the relative-refinement grammar
// against a disjoint-scope (absolute-claim) restriction; the restricted
// grammar cannot layer overlapping claims (Example 3.2).
func AblationRelativeVsAbsolute(s *Setup) ([]AblationRow, error) {
	relative, err := s.runHolisticQuality(nil)
	if err != nil {
		return nil, err
	}
	absolute, err := s.runHolisticQuality(func(c *core.Config) { c.DisjointScopes = true })
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Variant: "relative", Quality: relative},
		{Variant: "absolute (disjoint scopes)", Quality: absolute},
	}, nil
}

// AblationSigma sweeps the belief-model σ as a fraction of the grand mean
// (the paper fixes 50%).
func AblationSigma(s *Setup) ([]AblationRow, error) {
	q, err := s.regionSeasonQuery()
	if err != nil {
		return nil, err
	}
	exact, err := evaluateExact(s.Flights, q)
	if err != nil {
		return nil, err
	}
	grand := exact.GrandValue()
	var rows []AblationRow
	for _, frac := range []float64{0.25, 0.5, 1.0, 2.0} {
		frac := frac
		quality, err := s.runHolisticQuality(func(c *core.Config) { c.Sigma = grand * frac })
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("sigma=%.2fx mean", frac),
			Quality: quality,
		})
	}
	return rows, nil
}

// AblationWarmStart compares on-line sampling against a materialized
// sample view (the Section 4.3 extension): the view answers without
// reading any rows at query time.
func AblationWarmStart(s *Setup) ([]AblationRow, error) {
	online, err := s.runHolisticQuality(nil)
	if err != nil {
		return nil, err
	}
	q, err := s.regionSeasonQuery()
	if err != nil {
		return nil, err
	}
	space, err := olap.NewSpace(s.Flights, q)
	if err != nil {
		return nil, err
	}
	view, err := sampling.BuildView(space, 256, rand.New(rand.NewSource(s.Seed+300)))
	if err != nil {
		return nil, err
	}
	const runs = 3
	var sum float64
	for i := 0; i < runs; i++ {
		cfg := s.simConfig(s.Seed + int64(200+i))
		out, err := core.NewWarm(s.Flights, view, cfg).Vocalize()
		if err != nil {
			return nil, err
		}
		quality, err := core.ExactQuality(s.Flights, q, out, cfg)
		if err != nil {
			return nil, err
		}
		sum += quality
	}
	return []AblationRow{
		{Variant: "on-line sampling", Quality: online},
		{Variant: "materialized view", Quality: sum / runs},
	}, nil
}

// AblationFragments sweeps the refinement budget k, quantifying what each
// extra sentence buys.
func AblationFragments(s *Setup) ([]AblationRow, error) {
	var rows []AblationRow
	for _, k := range []int{1, 2, 3} {
		k := k
		quality, err := s.runHolisticQuality(func(c *core.Config) {
			c.Prefs.MaxChars = 300 + 150*k
			c.Prefs.MaxFragments = k
			c.Prefs.SigDigits = 1
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("k=%d refinements", k),
			Quality: quality,
		})
	}
	return rows, nil
}
