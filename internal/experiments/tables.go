package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/belief"
	"repro/internal/core"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/userstudy"
)

// Table2 runs the simulated pilot study (Tables 2 and 10).
func Table2(s *Setup) userstudy.PilotResult {
	return userstudy.RunPilot(userstudy.PilotConfig{Workers: 20, Seed: s.Seed})
}

// SpeechComparison is one row of Table 5 or Table 13: an approach's speech
// with its exact quality.
type SpeechComparison struct {
	Approach string
	Speech   string
	Quality  float64
}

// regionSeasonQuery is the Table 5 / Table 12 query.
func (s *Setup) regionSeasonQuery() (olap.Query, error) {
	return s.FlightsQuery("-", "RD")
}

// stateMonthQuery is the Table 13 query, whose result has hundreds of
// fields (the paper reports 378).
func (s *Setup) stateMonthQuery() olap.Query {
	airport := s.Flights.HierarchyByName("start airport")
	date := s.Flights.HierarchyByName("flight date")
	return olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: airport, Level: 2},
			{Hierarchy: date, Level: 2},
		},
	}
}

// compareSpeeches runs the three approaches on q under the simulated
// substrate cost model and scores each exactly. The unmerged baseline's
// 500 ms budget is mostly consumed by tree pre-processing, matching its
// Figure 3 role.
func (s *Setup) compareSpeeches(q olap.Query) ([]SpeechComparison, error) {
	cfg := s.substrateConfig(s.Seed)
	vocalizers := []core.Vocalizer{
		core.NewOptimal(s.Flights, q, cfg),
		core.NewUnmerged(s.Flights, q, cfg),
		core.NewHolistic(s.Flights, q, cfg),
	}
	var out []SpeechComparison
	for _, v := range vocalizers {
		res, err := v.Vocalize()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", v.Name(), err)
		}
		quality, err := core.ExactQuality(s.Flights, q, res, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, SpeechComparison{
			Approach: v.Name(),
			Speech:   res.Speech.MainText(),
			Quality:  quality,
		})
	}
	return out, nil
}

// Table5 generates the three alternative speeches for the region-by-season
// query.
func Table5(s *Setup) ([]SpeechComparison, error) {
	q, err := s.regionSeasonQuery()
	if err != nil {
		return nil, err
	}
	return s.compareSpeeches(q)
}

// Table13 generates the three speeches for the fine-grained state-by-month
// query.
func Table13(s *Setup) ([]SpeechComparison, error) {
	return s.compareSpeeches(s.stateMonthQuery())
}

// EstimationStudy bundles Tables 6 and 14 for one approach.
type EstimationStudy struct {
	Approach         string
	Users            []userstudy.UserScore
	MedianAbsError   float64
	TendencyAccuracy float64
}

// Table6And14 runs the simulated estimation study on the Table 5 speeches:
// eight users (two of whom misread relative changes as absolute, as the
// paper diagnosed for its users 1 and 8) estimate all twenty result fields.
// Absolute errors are reported in percentage points as in Table 6.
func Table6And14(s *Setup) ([]EstimationStudy, error) {
	q, err := s.regionSeasonQuery()
	if err != nil {
		return nil, err
	}
	speeches, err := Table5(s)
	if err != nil {
		return nil, err
	}
	space, err := olap.NewSpace(s.Flights, q)
	if err != nil {
		return nil, err
	}
	result, err := olap.EvaluateSpace(space)
	if err != nil {
		return nil, err
	}
	model, err := belief.NewModel(space, belief.SigmaFromScale(result.GrandValue()))
	if err != nil {
		return nil, err
	}
	// Re-vocalize to obtain structured speeches (Table5 returns text).
	cfg := s.substrateConfig(s.Seed)
	structured := map[string]*speech.Speech{}
	for _, v := range []core.Vocalizer{
		core.NewOptimal(s.Flights, q, cfg),
		core.NewUnmerged(s.Flights, q, cfg),
		core.NewHolistic(s.Flights, q, cfg),
	} {
		out, err := v.Vocalize()
		if err != nil {
			return nil, err
		}
		structured[v.Name()] = out.Speech
	}
	var studies []EstimationStudy
	for _, sc := range speeches {
		est := userstudy.RunEstimation(model, result, sc.Approach, structured[sc.Approach],
			userstudy.EstimationConfig{Users: 8, MisreadUsers: 2, Seed: s.Seed + 7})
		studies = append(studies, EstimationStudy{
			Approach:         sc.Approach,
			Users:            est.Users,
			MedianAbsError:   est.MedianAbsError() * 100, // percentage points
			TendencyAccuracy: est.MeanTendencyAccuracy(),
		})
	}
	return studies, nil
}

// Table7 extracts example facts from the flights dataset.
func Table7(s *Setup) ([]userstudy.Fact, error) {
	return userstudy.ExtractFacts(s.Flights)
}

// ExploratoryStudy bundles Tables 8 and 9 for one dataset.
type ExploratoryStudy struct {
	Dataset string
	Result  userstudy.ExploratoryResult
}

// Table8And9 runs the simulated exploratory study over both datasets.
// sessions <= 0 selects the paper's 20 per dataset.
func Table8And9(s *Setup, sessions int) ([]ExploratoryStudy, error) {
	if sessions <= 0 {
		sessions = 20
	}
	salRes, err := userstudy.RunExploratory(s.Salaries, "midCareerSalary",
		"average mid-career salary", speech.ThousandsFormat,
		userstudy.ExploratoryConfig{Sessions: sessions, MeanQueries: 12, Seed: s.Seed + 8})
	if err != nil {
		return nil, err
	}
	flRes, err := userstudy.RunExploratory(s.Flights, "cancelled",
		"average cancellation probability", speech.PercentFormat,
		userstudy.ExploratoryConfig{Sessions: sessions, MeanQueries: 12, Seed: s.Seed + 9})
	if err != nil {
		return nil, err
	}
	return []ExploratoryStudy{
		{Dataset: "Salary", Result: salRes},
		{Dataset: "Flights", Result: flRes},
	}, nil
}

// DatasetStats is one row of Table 11.
type DatasetStats struct {
	Name       string
	Dimensions string
	Rows       int
	Bytes      int64
}

// Table11 reports the dataset statistics.
func Table11(s *Setup) []DatasetStats {
	describe := func(name string, d *olap.Dataset) DatasetStats {
		dims := ""
		for i, h := range d.Hierarchies() {
			if i > 0 {
				dims += ", "
			}
			dims += h.Name
		}
		return DatasetStats{
			Name:       name,
			Dimensions: dims,
			Rows:       d.Table().NumRows(),
			Bytes:      d.Table().ApproxBytes(),
		}
	}
	return []DatasetStats{
		describe("Mid-career salary", s.Salaries),
		describe("Flight cancellations", s.Flights),
	}
}

// ResultField is one row of Table 12.
type ResultField struct {
	Region, Season string
	Cancellation   float64
}

// Table12 evaluates the region-by-season query exactly and returns the
// full result sorted by descending cancellation probability, as printed
// in the paper.
func Table12(s *Setup) ([]ResultField, error) {
	q, err := s.regionSeasonQuery()
	if err != nil {
		return nil, err
	}
	result, err := evaluateExact(s.Flights, q)
	if err != nil {
		return nil, err
	}
	space := result.Space()
	var rows []ResultField
	for i := 0; i < space.Size(); i++ {
		coords := space.Coordinates(i)
		rows = append(rows, ResultField{
			Region:       coords[0].Name,
			Season:       coords[1].Name,
			Cancellation: result.Value(i),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cancellation > rows[j].Cancellation })
	return rows, nil
}

// PriorComparison measures the prior baseline's latency and speech length
// on the region-by-season query, complementing Figure 3 for the related-
// work discussion.
type PriorComparison struct {
	Latency   time.Duration
	SpeechLen int
}

// PriorOnFlights runs the 2017 greedy baseline on the Figure 3 headline
// query.
func PriorOnFlights(s *Setup) (PriorComparison, error) {
	q, err := s.regionSeasonQuery()
	if err != nil {
		return PriorComparison{}, err
	}
	out, err := baseline.NewPrior(s.Flights, q, baseline.Config{
		Format:      speech.PercentFormat,
		MergeValues: true,
	}).Vocalize()
	if err != nil {
		return PriorComparison{}, err
	}
	return PriorComparison{Latency: out.Latency, SpeechLen: len(out.Text)}, nil
}
