// Command voiceolapd serves the voice-OLAP web interface used by the
// paper's crowd study: a single page where each query can be answered by
// either vocalization method, spoken by the browser's speech synthesis.
//
// The daemon is hardened for sustained traffic: the HTTP server carries
// read/write/idle timeouts, every request runs under a deadline (answers
// degrade to a shorter valid speech instead of overrunning), concurrent
// vocalizations are bounded (503 + Retry-After beyond the limit), and
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// queries before exiting.
//
// Usage:
//
//	voiceolapd [-addr :8080] [-flight-rows N] [-seed S]
//	           [-request-timeout 30s] [-shutdown-grace 10s]
//	           [-max-concurrent 32] [-max-body-bytes 65536]
//	           [-log-cap 10000] [-max-sessions 1024] [-session-ttl 1h]
//	           [-read-timeout 30s] [-write-timeout 60s] [-idle-timeout 2m]
//	           [-debug-addr 127.0.0.1:6060]
//
// -debug-addr serves net/http/pprof on its own listener and mux, so
// planner hot spots are profileable in production without ever exposing
// profiling endpoints on the query port. It is off by default; bind it to
// localhost or a private interface.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/speech"
	"repro/internal/voice"
	"repro/internal/web"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "voiceolapd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	flightRows := flag.Int("flight-rows", datagen.DefaultFlightRows, "flight dataset rows")
	seed := flag.Int64("seed", 1, "random seed")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline; answers degrade at the deadline (negative disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight queries on SIGINT/SIGTERM")
	maxConcurrent := flag.Int("max-concurrent", 32, "concurrent vocalizations admitted before responding 503")
	maxBodyBytes := flag.Int64("max-body-bytes", 64<<10, "request body cap for /api/query")
	logCap := flag.Int("log-cap", 10000, "query-log ring capacity")
	maxSessions := flag.Int("max-sessions", 1024, "live session cap (LRU eviction beyond it)")
	sessionTTL := flag.Duration("session-ttl", time.Hour, "idle session eviction deadline")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "HTTP server read timeout")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "HTTP server write timeout (keep above -request-timeout)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle timeout")
	debugAddr := flag.String("debug-addr", "", "pprof listen address on a separate mux (empty disables; bind to localhost)")
	flag.Parse()

	fmt.Printf("generating datasets (flights: %d rows)...\n", *flightRows)
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: *flightRows, Seed: *seed})
	if err != nil {
		return err
	}
	salaries, err := datagen.Salaries(datagen.SalariesConfig{Seed: *seed + 1})
	if err != nil {
		return err
	}

	cfg := core.Config{
		Seed:                 *seed,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 2000,
		MaxTreeNodes:         100000,
	}
	opts := web.Options{
		RequestTimeout: *requestTimeout,
		MaxBodyBytes:   *maxBodyBytes,
		MaxConcurrent:  *maxConcurrent,
		LogCap:         *logCap,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
	}
	srv, err := web.NewServerWith(cfg, opts,
		web.DatasetInfo{Name: "flights", Dataset: flights, MeasureCol: "cancelled",
			MeasureDesc: "average cancellation probability", Format: speech.PercentFormat},
		web.DatasetInfo{Name: "salaries", Dataset: salaries, MeasureCol: "midCareerSalary",
			MeasureDesc: "average mid-career salary", Format: speech.ThousandsFormat},
	)
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		dln, derr := net.Listen("tcp", *debugAddr)
		if derr != nil {
			return fmt.Errorf("debug listener: %w", derr)
		}
		fmt.Printf("serving pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			// The profiling handlers live on their own mux and listener:
			// the query port's handler never sees them, and the
			// (pprof-import-polluted) http.DefaultServeMux is unused.
			dmux := http.NewServeMux()
			dmux.HandleFunc("/debug/pprof/", pprof.Index)
			dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			dsrv := &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
			if serr := dsrv.Serve(dln); serr != nil && serr != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "voiceolapd: pprof server:", serr)
			}
		}()
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving voice-based OLAP on %s (SIGINT/SIGTERM drains for up to %s)\n", ln.Addr(), *shutdownGrace)
	if err := web.ServeGraceful(context.Background(), httpSrv, ln, *shutdownGrace); err != nil {
		return err
	}
	fmt.Println("shut down cleanly")
	return nil
}
