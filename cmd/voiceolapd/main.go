// Command voiceolapd serves the voice-OLAP web interface used by the
// paper's crowd study: a single page where each query can be answered by
// either vocalization method, spoken by the browser's speech synthesis.
//
// Usage:
//
//	voiceolapd [-addr :8080] [-flight-rows N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/speech"
	"repro/internal/voice"
	"repro/internal/web"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "voiceolapd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	flightRows := flag.Int("flight-rows", datagen.DefaultFlightRows, "flight dataset rows")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("generating datasets (flights: %d rows)...\n", *flightRows)
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: *flightRows, Seed: *seed})
	if err != nil {
		return err
	}
	salaries, err := datagen.Salaries(datagen.SalariesConfig{Seed: *seed + 1})
	if err != nil {
		return err
	}

	cfg := core.Config{
		Seed:                 *seed,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 2000,
		MaxTreeNodes:         100000,
	}
	srv, err := web.NewServer(cfg,
		web.DatasetInfo{Name: "flights", Dataset: flights, MeasureCol: "cancelled",
			MeasureDesc: "average cancellation probability", Format: speech.PercentFormat},
		web.DatasetInfo{Name: "salaries", Dataset: salaries, MeasureCol: "midCareerSalary",
			MeasureDesc: "average mid-career salary", Format: speech.ThousandsFormat},
	)
	if err != nil {
		return err
	}
	fmt.Printf("serving voice-based OLAP on %s\n", *addr)
	return http.ListenAndServe(*addr, srv.Handler())
}
