// Command voiceolapd serves the voice-OLAP web interface used by the
// paper's crowd study: a single page where each query can be answered by
// either vocalization method, spoken by the browser's speech synthesis.
//
// The daemon is hardened for sustained multi-tenant traffic: the HTTP
// server carries read/write/idle timeouts, every request runs under a
// deadline (answers degrade to a shorter valid speech instead of
// overrunning), and SIGINT/SIGTERM trigger a graceful shutdown that sheds
// the admission queue and drains in-flight queries before exiting.
// Overload is governed by per-tenant token buckets and a weighted-fair
// admission queue (429/503 + load-derived Retry-After), a brownout ladder
// that trades answer quality for latency headroom, and per-dataset
// circuit breakers that trip the holistic planner to the prior baseline
// after consecutive deadline blowouts.
//
// Usage:
//
//	voiceolapd [-addr :8080] [-flight-rows N] [-seed S]
//	           [-request-timeout 30s] [-shutdown-grace 10s]
//	           [-max-concurrent 32] [-queue-depth 0] [-max-body-bytes 65536]
//	           [-tenant-rate 0] [-tenant-burst 0] [-tenant-weights a=2,b=1]
//	           [-brownout-target 0] [-brownout-window 64] [-brownout-hold 2s]
//	           [-breaker-threshold 0] [-breaker-cooldown 10s]
//	           [-log-cap 10000] [-max-sessions 1024] [-session-ttl 1h]
//	           [-semcache-entries 1024] [-semcache-views 64] [-pool-size 4]
//	           [-read-timeout 30s] [-write-timeout 60s] [-idle-timeout 2m]
//	           [-debug-addr 127.0.0.1:6060]
//	           [-fault-slow-every 0] [-fault-stall-every 0] [-fault-fail-every 0]
//
// Repeated voice queries are nearly free: a semantic answer cache keyed
// by canonical query (scope order and dimension synonyms normalized away)
// replays finished speeches for equivalent requests, a warmed sample-view
// cache skips scan cost on partial hits, and per-dataset session pools
// hand out pre-cloned sessions. The query port exposes Prometheus-style
// text metrics at /metrics (serving, brownout, breaker, semcache, and
// latency-quantile counters).
//
// -debug-addr serves net/http/pprof on its own listener and mux, so
// planner hot spots are profileable in production without ever exposing
// profiling endpoints on the query port. It is off by default; bind it to
// localhost or a private interface.
//
// The -fault-* flags inject storage faults (slow, stalling, truncated
// scans) into the holistic planner's scan path — chaos testing only,
// never production.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/speech"
	"repro/internal/voice"
	"repro/internal/web"
)

// parseWeights parses "tenant=weight,tenant=weight" into a weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("malformed weight %q (want tenant=weight)", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("weight for %q must be a positive integer, got %q", name, val)
		}
		out[name] = w
	}
	return out, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "voiceolapd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	flightRows := flag.Int("flight-rows", datagen.DefaultFlightRows, "flight dataset rows")
	seed := flag.Int64("seed", 1, "random seed")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline; answers degrade at the deadline (negative disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight queries on SIGINT/SIGTERM")
	plannerWorkers := flag.Int("planner-workers", 1, "tree-sampling workers per planning round (1 = sequential planner; >1 uses virtual-loss parallel UCT, capped back to 1 under brownout)")
	samplerShards := flag.Int("sampler-shards", 0, "background-scan workers over disjoint row partitions (<= 1 single scan goroutine; only applies with background sampling)")
	maxConcurrent := flag.Int("max-concurrent", 32, "concurrent vocalizations admitted before queueing or responding 503")
	queueDepth := flag.Int("queue-depth", 0, "weighted-fair admission queue depth beyond -max-concurrent (0 sheds immediately at saturation)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admitted queries per second (0 disables rate limiting; beyond it responds 429)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (default: one second of -tenant-rate)")
	tenantWeights := flag.String("tenant-weights", "", "comma-separated tenant=weight fair-share overrides (default weight 1)")
	brownoutTarget := flag.Duration("brownout-target", 0, "p99 vocalize-latency goal; overshooting it steps down the degradation ladder (0 disables)")
	brownoutWindow := flag.Int("brownout-window", 64, "sliding sample window for the brownout p99")
	brownoutHold := flag.Duration("brownout-hold", 2*time.Second, "minimum dwell time between brownout ladder steps")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive deadline blowouts tripping a dataset's holistic path to the prior baseline (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 10*time.Second, "open-breaker cooldown before a half-open probe")
	maxBodyBytes := flag.Int64("max-body-bytes", 64<<10, "request body cap for /api/query")
	logCap := flag.Int("log-cap", 10000, "query-log ring capacity")
	maxSessions := flag.Int("max-sessions", 1024, "live session cap (LRU eviction beyond it)")
	sessionTTL := flag.Duration("session-ttl", time.Hour, "idle session eviction deadline")
	semcacheEntries := flag.Int("semcache-entries", 1024, "semantic answer cache capacity (negative disables; equivalent repeat queries replay for free)")
	semcacheViews := flag.Int("semcache-views", 64, "warmed sample-view cache capacity (negative disables; repeat queries skip scan cost)")
	poolSize := flag.Int("pool-size", 4, "per-dataset warm session pool size (negative disables)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "HTTP server read timeout")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "HTTP server write timeout (keep above -request-timeout)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle timeout")
	debugAddr := flag.String("debug-addr", "", "pprof listen address on a separate mux (empty disables; bind to localhost)")
	faultSlowEvery := flag.Int("fault-slow-every", 0, "chaos: wrap every Nth scan in a slow scanner (0 disables)")
	faultSlowDelay := flag.Duration("fault-slow-delay", time.Millisecond, "chaos: injected per-row latency for slow scans")
	faultStallEvery := flag.Int("fault-stall-every", 0, "chaos: wrap every Nth scan in a stalling scanner (0 disables)")
	faultStallRelease := flag.Duration("fault-stall-release", time.Second, "chaos: auto-release delay for stalled scans")
	faultFailEvery := flag.Int("fault-fail-every", 0, "chaos: truncate every Nth scan mid-stream (0 disables)")
	flag.Parse()

	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		return fmt.Errorf("-tenant-weights: %w", err)
	}

	fmt.Printf("generating datasets (flights: %d rows)...\n", *flightRows)
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: *flightRows, Seed: *seed})
	if err != nil {
		return err
	}
	salaries, err := datagen.Salaries(datagen.SalariesConfig{Seed: *seed + 1})
	if err != nil {
		return err
	}

	cfg := core.Config{
		Seed:                 *seed,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 2000,
		MaxTreeNodes:         100000,
		PlannerWorkers:       *plannerWorkers,
		SamplerShards:        *samplerShards,
	}
	injectorOpts := faults.InjectorOptions{
		SlowEvery:    *faultSlowEvery,
		SlowDelay:    *faultSlowDelay,
		StallEvery:   *faultStallEvery,
		StallRelease: *faultStallRelease,
		FailEvery:    *faultFailEvery,
	}
	if injectorOpts.Enabled() {
		fmt.Println("CHAOS: storage-fault injection enabled on the holistic scan path")
		cfg.Scanner = faults.NewInjector(injectorOpts).Scanner
	}
	opts := web.Options{
		RequestTimeout:   *requestTimeout,
		MaxBodyBytes:     *maxBodyBytes,
		MaxConcurrent:    *maxConcurrent,
		QueueDepth:       *queueDepth,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		TenantWeights:    weights,
		BrownoutTarget:   *brownoutTarget,
		BrownoutWindow:   *brownoutWindow,
		BrownoutHold:     *brownoutHold,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		LogCap:           *logCap,
		MaxSessions:      *maxSessions,
		SessionTTL:       *sessionTTL,
		SemCacheEntries:  *semcacheEntries,
		SemCacheViews:    *semcacheViews,
		PoolSize:         *poolSize,
	}
	srv, err := web.NewServerWith(cfg, opts,
		web.DatasetInfo{Name: "flights", Dataset: flights, MeasureCol: "cancelled",
			MeasureDesc: "average cancellation probability", Format: speech.PercentFormat},
		web.DatasetInfo{Name: "salaries", Dataset: salaries, MeasureCol: "midCareerSalary",
			MeasureDesc: "average mid-career salary", Format: speech.ThousandsFormat},
	)
	if err != nil {
		return err
	}
	defer srv.Close()

	if *debugAddr != "" {
		dln, derr := net.Listen("tcp", *debugAddr)
		if derr != nil {
			return fmt.Errorf("debug listener: %w", derr)
		}
		fmt.Printf("serving pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			// The profiling handlers live on their own mux and listener:
			// the query port's handler never sees them, and the
			// (pprof-import-polluted) http.DefaultServeMux is unused.
			dmux := http.NewServeMux()
			dmux.HandleFunc("/debug/pprof/", pprof.Index)
			dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			dsrv := &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
			if serr := dsrv.Serve(dln); serr != nil && serr != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "voiceolapd: pprof server:", serr)
			}
		}()
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	// On SIGINT/SIGTERM, shed every queued admission waiter immediately so
	// the grace window is spent draining in-flight work, not the queue.
	httpSrv.RegisterOnShutdown(srv.StartDrain)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving voice-based OLAP on %s (SIGINT/SIGTERM drains for up to %s)\n", ln.Addr(), *shutdownGrace)
	if err := web.ServeGraceful(context.Background(), httpSrv, ln, *shutdownGrace); err != nil {
		return err
	}
	fmt.Println("shut down cleanly")
	return nil
}
