package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datagen"
	"repro/internal/web"
)

// streamParams bundles the stream workload inputs.
type streamParams struct {
	target         string
	dataset        string
	seed           int64
	sessions       int
	queries        int
	batches        int
	batchRows      int
	ingestInterval time.Duration
	flightRows     int
	maxConcurrent  int
	requestTimeout time.Duration
	clientTimeout  time.Duration
	outPath        string
	assert         bool
}

// streamScript is the cycle every query session walks while ingest runs:
// repeated equivalent phrasings (cache pressure), a window that narrows to
// recent data, a windowed re-ask, and the widening back out. All sessions
// start at index 0 so their window state stays aligned and equivalent
// questions actually collide in the cache.
var streamScript = []string{
	"how does cancellation depend on region and season",
	"how does cancellation depend on season and region",
	"in the last hour",
	"how does cancellation depend on region and season",
	"all time",
	"how does cancellation depend on airline",
}

// ingestAck mirrors the server's /api/ingest acknowledgement.
type ingestAck struct {
	Appended  int   `json:"appended"`
	Epoch     int64 `json:"epoch"`
	TotalRows int   `json:"totalRows"`
}

// postIngest ships one batch of rows to /api/ingest.
func postIngest(client *http.Client, base, dataset string, rows []datagen.FlightRow) (ingestAck, int, error) {
	body, err := json.Marshal(map[string]any{"dataset": dataset, "rows": rows})
	if err != nil {
		return ingestAck{}, 0, err
	}
	resp, err := client.Post(base+"/api/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return ingestAck{}, 0, err
	}
	defer resp.Body.Close()
	var ack ingestAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil && resp.StatusCode == http.StatusOK {
		return ack, resp.StatusCode, err
	}
	return ack, resp.StatusCode, nil
}

// fetchDataset reads one dataset's listing from /api/datasets.
func fetchDataset(client *http.Client, base, name string) (rows int64, epoch int64, err error) {
	resp, err := client.Get(base + "/api/datasets")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var list []struct {
		Name  string `json:"name"`
		Rows  int64  `json:"rows"`
		Epoch int64  `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return 0, 0, err
	}
	for _, d := range list {
		if d.Name == name {
			return d.Rows, d.Epoch, nil
		}
	}
	return 0, 0, fmt.Errorf("dataset %q not listed", name)
}

// runStream races a streaming ingest feed against concurrent query
// sessions and audits the freshness contract: every answer — cached or
// freshly computed — must be computed at or above the highest ingest epoch
// the client had seen acknowledged when it asked.
func runStream(p streamParams) error {
	if p.dataset != "flights" {
		return fmt.Errorf("the stream workload generates flight rows; -dataset must be flights")
	}
	if p.batches < 1 || p.batchRows < 1 {
		return fmt.Errorf("-batches and -batch-rows must be positive")
	}

	base := p.target
	if base == "" {
		// Semantic cache at server defaults — stale replays are exactly
		// what this workload hunts — and a queue deep enough that clean
		// sheds never muddy the freshness audit.
		srv, ln, serr := startServer(serverConfig{
			seed: p.seed, flightRows: p.flightRows,
			opts: web.Options{
				RequestTimeout: p.requestTimeout,
				MaxConcurrent:  p.maxConcurrent,
				QueueDepth:     2 * p.sessions,
				Logf:           func(string, ...any) {},
			},
		})
		if serr != nil {
			return serr
		}
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process server on %s (semantic cache at defaults)\n", base)
	}
	client := &http.Client{Timeout: p.clientTimeout}

	rows0, epoch0, err := fetchDataset(client, base, p.dataset)
	if err != nil {
		return err
	}

	// known tracks the highest acknowledged ingest epoch; ackedRows the
	// row total of the latest acknowledgement. Both are updated by the
	// ingester before any later query reads them, so a query sent after an
	// ack provably races only answers that must include those rows.
	var known atomic.Int64
	var ackedRows atomic.Int64
	known.Store(epoch0)
	ackedRows.Store(rows0)
	var ingestErrs []string
	batchesAcked := 0

	fmt.Printf("streaming %d batches x %d rows against %d sessions x %d queries...\n",
		p.batches, p.batchRows, p.sessions, p.queries)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < p.batches; b++ {
			rows := datagen.FlightRows(p.seed+int64(b)*1009+7, p.batchRows)
			ack, code, err := postIngest(client, base, p.dataset, rows)
			switch {
			case err != nil:
				ingestErrs = append(ingestErrs, fmt.Sprintf("batch %d: %v", b, err))
			case code != http.StatusOK:
				ingestErrs = append(ingestErrs, fmt.Sprintf("batch %d: status %d", b, code))
			default:
				batchesAcked++
				for {
					cur := known.Load()
					if ack.Epoch <= cur || known.CompareAndSwap(cur, ack.Epoch) {
						break
					}
				}
				ackedRows.Store(int64(ack.TotalRows))
			}
			time.Sleep(p.ingestInterval)
		}
	}()
	results := make([][]sample, p.sessions)
	for w := 0; w < p.sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			session := fmt.Sprintf("stream-%d", w)
			tenant := fmt.Sprintf("tenant-%d", w%4)
			out := make([]sample, 0, p.queries)
			for q := 0; q < p.queries; q++ {
				want := known.Load()
				s := postQuery(client, base, session, tenant, p.dataset, streamScript[q%len(streamScript)], "this")
				s.wantEpoch = want
				out = append(out, s)
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	// Settle phase: with ingest quiescent, an equivalent rephrase in a
	// fresh session must replay from the cache at the final epoch — the
	// post-stream steady state works exactly like the static one.
	finalEpoch := known.Load()
	settleA := postQuery(client, base, "stream-settle-a", "bench", p.dataset,
		"how does cancellation depend on region and season", "this")
	settleB := postQuery(client, base, "stream-settle-b", "bench", p.dataset,
		"how does cancellation depend on season and region", "this")
	settleHit := settleB.cache == "hit" || settleB.cache == "coalesced"
	visibleRows, visibleEpoch, err := fetchDataset(client, base, p.dataset)
	if err != nil {
		return err
	}

	report := summarizeStream(results, wall)
	report["ingest"] = map[string]any{
		"batches":      p.batches,
		"batchesAcked": batchesAcked,
		"batchRows":    p.batchRows,
		"startRows":    rows0,
		"startEpoch":   epoch0,
		"ackedRows":    ackedRows.Load(),
		"finalEpoch":   finalEpoch,
		"errors":       ingestErrs,
	}
	report["visibility"] = map[string]any{
		"visibleRows":   visibleRows,
		"visibleEpoch":  visibleEpoch,
		"settleHit":     settleHit,
		"settleEpoch":   settleB.dataEpoch,
		"settleSpoke":   settleA.hasSpeech && settleB.hasSpeech,
		"settleGrammar": settleA.grammarOK && settleB.grammarOK,
		"settleEpochSeen": map[string]int64{
			"a": settleA.dataEpoch, "b": settleB.dataEpoch,
		},
	}
	report["config"] = map[string]any{
		"target": p.target, "sessions": p.sessions, "queries": p.queries,
		"batches": p.batches, "batchRows": p.batchRows,
		"ingestIntervalMs": float64(p.ingestInterval) / float64(time.Millisecond),
		"seed":             p.seed, "flightRows": p.flightRows,
		"maxConcurrent": p.maxConcurrent,
	}
	if serving := fetchServing(client, base); serving != nil {
		report["serving"] = serving
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(p.outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", p.outPath)
	fmt.Printf("requests=%v ok=%v hits=%v staleCacheReplays=%v freshnessViolations=%v staleFlagged=%v visibleRows=%d finalEpoch=%d\n",
		report["requests"], report["ok"], report["hits"],
		report["staleCacheReplays"], report["freshnessViolations"], report["staleFlagged"],
		visibleRows, finalEpoch)

	if p.assert {
		return assertStream(report, p, rows0)
	}
	return nil
}

// summarizeStream aggregates the query samples, counting the freshness
// failures the workload exists to catch.
func summarizeStream(results [][]sample, wall time.Duration) map[string]any {
	var total, transport, non200, ok, speechOK int
	var hits, warm, misses, degraded, invalid int
	var staleReplays, freshViolations, staleFlagged int
	var hitLat, missLat []time.Duration
	var invalidExamples []string
	status := map[string]int{}
	for _, samples := range results {
		for _, s := range samples {
			total++
			if s.code < 0 {
				transport++
				continue
			}
			status[fmt.Sprintf("%d", s.code)]++
			if s.code != http.StatusOK {
				non200++
				continue
			}
			ok++
			if !s.hasSpeech {
				continue
			}
			speechOK++
			if s.degraded {
				degraded++
			}
			if s.stale {
				staleFlagged++
			}
			if !s.grammarOK {
				invalid++
				if len(invalidExamples) < 3 {
					invalidExamples = append(invalidExamples, s.speech)
				}
			}
			cached := s.cache == "hit" || s.cache == "coalesced"
			// The freshness invariant: an answer sent after the client saw
			// epoch E acknowledged must be computed at epoch >= E — the
			// cache key carries the serve-time epoch and fresh computes
			// capture it at commit, so any violation is a stale read.
			if s.dataEpoch < s.wantEpoch {
				freshViolations++
				if cached {
					staleReplays++
				}
			}
			if cached {
				hits++
				hitLat = append(hitLat, s.wall)
			} else if s.cache == "warm" {
				warm++
			} else {
				misses++
				missLat = append(missLat, s.wall)
			}
		}
	}
	report := map[string]any{
		"bench":               "stream",
		"num_cpu":             runtime.NumCPU(),
		"gomaxprocs":          runtime.GOMAXPROCS(0),
		"wallMs":              float64(wall) / float64(time.Millisecond),
		"requests":            total,
		"ok":                  ok,
		"non200":              non200,
		"transportErrors":     transport,
		"status":              status,
		"speechAnswers":       speechOK,
		"hits":                hits,
		"warm":                warm,
		"misses":              misses,
		"hitRate":             ratio(hits, speechOK),
		"staleCacheReplays":   staleReplays,
		"freshnessViolations": freshViolations,
		"staleFlagged":        staleFlagged,
		"degraded":            degraded,
		"grammarInvalid":      invalid,
		"hitLatencyMs": map[string]float64{
			"p50": quantileMS(hitLat, 0.50),
			"p99": quantileMS(hitLat, 0.99),
		},
		"missLatencyMs": map[string]float64{
			"p50": quantileMS(missLat, 0.50),
			"p99": quantileMS(missLat, 0.99),
		},
	}
	if len(invalidExamples) > 0 {
		report["grammarInvalidExamples"] = invalidExamples
	}
	return report
}

// assertStream enforces the streaming freshness contract on the report.
func assertStream(report map[string]any, p streamParams, rows0 int64) error {
	var violations []string
	if n := report["transportErrors"].(int); n > 0 {
		violations = append(violations, fmt.Sprintf("%d transport errors", n))
	}
	if n := report["non200"].(int); n > 0 {
		violations = append(violations, fmt.Sprintf("%d non-200 query responses (the stream profile never sheds)", n))
	}
	if n := report["staleCacheReplays"].(int); n > 0 {
		violations = append(violations, fmt.Sprintf("%d stale cache replays (cached answer below an acknowledged ingest epoch)", n))
	}
	if n := report["freshnessViolations"].(int); n > 0 {
		violations = append(violations, fmt.Sprintf("%d answers computed below an acknowledged ingest epoch", n))
	}
	if n := report["grammarInvalid"].(int); n > 0 {
		violations = append(violations, fmt.Sprintf("%d grammar-invalid speech answers (ingest must not bend speech)", n))
	}
	if report["speechAnswers"].(int) == 0 {
		violations = append(violations, "no speech answer ever succeeded")
	}
	if report["hits"].(int) == 0 {
		violations = append(violations, "the semantic cache never hit while streaming (repetition workload)")
	}
	ing := report["ingest"].(map[string]any)
	if acked := ing["batchesAcked"].(int); acked != p.batches {
		violations = append(violations, fmt.Sprintf("only %d of %d ingest batches acknowledged: %v",
			acked, p.batches, ing["errors"]))
	}
	vis := report["visibility"].(map[string]any)
	wantRows := rows0 + int64(p.batches*p.batchRows)
	if got := vis["visibleRows"].(int64); got != wantRows {
		violations = append(violations, fmt.Sprintf("visible rows %d, want %d (acked rows never became visible)", got, wantRows))
	}
	if !vis["settleHit"].(bool) {
		violations = append(violations, "post-stream equivalent rephrase did not replay from the cache")
	}
	if !vis["settleSpoke"].(bool) || !vis["settleGrammar"].(bool) {
		violations = append(violations, "post-stream settle queries failed to speak in-grammar")
	}
	if fin := ing["finalEpoch"].(int64); vis["settleEpoch"].(int64) < fin {
		violations = append(violations, fmt.Sprintf("settle answer at epoch %d, want >= final ingest epoch %d",
			vis["settleEpoch"].(int64), fin))
	}
	if len(violations) == 0 {
		fmt.Println("ASSERT OK: zero stale replays, all ingested rows visible, speech in-grammar")
		return nil
	}
	return fmt.Errorf("stream invariants violated:\n  - %s", strings.Join(violations, "\n  - "))
}
