// Command loadgen is a chaos load harness for the voice-OLAP server: it
// drives many concurrent tenant-tagged query sessions against a live
// server — by default one it spins up in-process with storage-fault
// injection on the scan path — and reports speech-latency percentiles,
// shed rate, degraded ratio, and per-ladder-step service counts as
// BENCH_serving.json.
//
// Usage:
//
//	loadgen [-workload serving|semcache|stream]
//	        [-target http://host:port] [-sessions 64] [-queries 20]
//	        [-tenants 8] [-dataset flights] [-seed 1] [-out BENCH_serving.json]
//	        [-assert] [-max-shed-rate 0.9]
//	        [-requests 400] [-distinct 12] [-zipf-s 1.2]
//	        [-batches 8] [-batch-rows 64] [-ingest-interval 25ms]
//
// The semcache workload measures the semantic answer cache instead of
// chaos resilience: every request opens a fresh session and asks one of
// -distinct canonical questions drawn from a Zipf popularity distribution,
// phrased through a random equivalent wording (dimension order swapped,
// "carrier" for "airline", ...). The report (BENCH_semcache.json) splits
// latency percentiles by serving path — cache hits versus cold vocalizer
// runs — and computes the hit speedup; with -assert it fails unless the
// cache actually hit and hits were faster than misses.
//
// The stream workload races a streaming ingest feed against concurrent
// query sessions (semantic cache on): an ingester ships -batches batches
// of -batch-rows generated rows to /api/ingest while -sessions sessions
// keep asking repeated and time-windowed questions. The client records the
// highest acknowledged ingest epoch before every query; the report
// (BENCH_stream.json) counts answers — cached or fresh — computed below
// that epoch (stale reads) plus ingest visibility, and with -assert it
// fails on any stale cache replay, any freshness violation, any
// grammar-invalid speech, or rows that never became visible.
//
// In-process server knobs (ignored with -target):
//
//	[-flight-rows 5000] [-max-concurrent 8] [-queue-depth 32]
//	[-tenant-rate 0] [-request-timeout 2s]
//	[-brownout-target 0] [-breaker-threshold 3] [-breaker-cooldown 2s]
//	[-fault-slow-every 3] [-fault-slow-delay 200us]
//	[-fault-stall-every 17] [-fault-stall-release 300ms]
//	[-fault-fail-every 5]
//
// With -assert the run fails (exit 1) on any unexplained 5xx (503 sheds
// are intentional and excluded), on any grammar-invalid speech, or on a
// shed rate above -max-shed-rate — the chaos invariants: overload must
// surface as clean refusals and degraded-but-valid answers, never as
// internal errors or broken speech.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/speech"
	"repro/internal/voice"
	"repro/internal/web"
)

// script is the deterministic command cycle every session walks through,
// offset by its worker index: breakdowns and drills that vocalize, plus
// navigation commands that exercise the non-query path.
var script = []string{
	"break down by season",
	"drill down",
	"how does cancellation depend on region and season",
	"back",
	"break down by airline",
	"clear",
}

// sample is one request's outcome.
type sample struct {
	code      int
	wall      time.Duration
	hasSpeech bool
	servedBy  string
	origin    string
	cache     string
	degraded  bool
	fallback  string
	grammarOK bool
	speech    string
	dataEpoch int64
	stale     bool
	// wantEpoch is the highest ingest epoch the client had seen
	// acknowledged when it sent the request (stream workload only): any
	// answer computed below it proves a stale read.
	wantEpoch int64
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	workload := flag.String("workload", "serving", "workload: serving (chaos resilience) or semcache (Zipf repetition cache bench)")
	target := flag.String("target", "", "URL of a running voiceolapd (empty: spin up an in-process server)")
	sessions := flag.Int("sessions", 64, "concurrent query sessions")
	queries := flag.Int("queries", 20, "queries per session")
	tenants := flag.Int("tenants", 8, "distinct tenants the sessions are spread over (X-Tenant header)")
	dataset := flag.String("dataset", "flights", "dataset to query")
	seed := flag.Int64("seed", 1, "random seed for the in-process server's data")
	clientTimeout := flag.Duration("client-timeout", 15*time.Second, "per-request client timeout")
	outPath := flag.String("out", "", "benchmark output path (default BENCH_<workload>.json)")
	assert := flag.Bool("assert", false, "exit nonzero when a workload invariant is violated")
	maxShedRate := flag.Float64("max-shed-rate", 0.9, "serving assert: maximum tolerated shed rate")
	requests := flag.Int("requests", 400, "semcache: total requests to issue")
	distinct := flag.Int("distinct", 12, "semcache: distinct canonical queries in the Zipf universe")
	zipfS := flag.Float64("zipf-s", 1.2, "semcache: Zipf popularity exponent (>1; larger = more repetition)")
	batches := flag.Int("batches", 8, "stream: ingest batches to ship")
	batchRows := flag.Int("batch-rows", 64, "stream: rows per ingest batch")
	ingestInterval := flag.Duration("ingest-interval", 25*time.Millisecond, "stream: pause between ingest batches")

	flightRows := flag.Int("flight-rows", 5000, "in-process: flight dataset rows")
	maxConcurrent := flag.Int("max-concurrent", 8, "in-process: vocalization slots")
	queueDepth := flag.Int("queue-depth", 32, "in-process: admission queue depth")
	tenantRate := flag.Float64("tenant-rate", 0, "in-process: per-tenant queries per second (0 disables)")
	requestTimeout := flag.Duration("request-timeout", 2*time.Second, "in-process: per-request deadline")
	brownoutTarget := flag.Duration("brownout-target", 0, "in-process: p99 latency goal for the brownout ladder (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "in-process: consecutive blowouts tripping a dataset breaker (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "in-process: open-breaker cooldown")
	faultSlowEvery := flag.Int("fault-slow-every", 3, "in-process chaos: slow every Nth scan (0 disables)")
	faultSlowDelay := flag.Duration("fault-slow-delay", 200*time.Microsecond, "in-process chaos: per-row delay for slow scans")
	faultStallEvery := flag.Int("fault-stall-every", 17, "in-process chaos: stall every Nth scan (0 disables)")
	faultStallRelease := flag.Duration("fault-stall-release", 300*time.Millisecond, "in-process chaos: stall auto-release delay")
	faultFailEvery := flag.Int("fault-fail-every", 5, "in-process chaos: truncate every Nth scan (0 disables)")
	flag.Parse()

	if *outPath == "" {
		*outPath = "BENCH_" + *workload + ".json"
	}
	switch *workload {
	case "serving":
	case "semcache":
		return runSemcache(semcacheParams{
			target: *target, dataset: *dataset, seed: *seed,
			requests: *requests, distinct: *distinct, zipfS: *zipfS,
			flightRows: *flightRows, maxConcurrent: *maxConcurrent,
			requestTimeout: *requestTimeout, clientTimeout: *clientTimeout,
			outPath: *outPath, assert: *assert,
		})
	case "stream":
		return runStream(streamParams{
			target: *target, dataset: *dataset, seed: *seed,
			sessions: *sessions, queries: *queries,
			batches: *batches, batchRows: *batchRows, ingestInterval: *ingestInterval,
			flightRows: *flightRows, maxConcurrent: *maxConcurrent,
			requestTimeout: *requestTimeout, clientTimeout: *clientTimeout,
			outPath: *outPath, assert: *assert,
		})
	default:
		return fmt.Errorf("unknown -workload %q (want serving, semcache, or stream)", *workload)
	}

	base := *target
	var injector *faults.Injector
	if base == "" {
		injectorOpts := faults.InjectorOptions{
			SlowEvery:    *faultSlowEvery,
			SlowDelay:    *faultSlowDelay,
			StallEvery:   *faultStallEvery,
			StallRelease: *faultStallRelease,
			FailEvery:    *faultFailEvery,
		}
		if injectorOpts.Enabled() {
			injector = faults.NewInjector(injectorOpts)
		}
		srv, ln, err := startServer(serverConfig{
			seed: *seed, flightRows: *flightRows, injector: injector,
			opts: web.Options{
				RequestTimeout:   *requestTimeout,
				MaxConcurrent:    *maxConcurrent,
				QueueDepth:       *queueDepth,
				TenantRate:       *tenantRate,
				BrownoutTarget:   *brownoutTarget,
				BreakerThreshold: *breakerThreshold,
				BreakerCooldown:  *breakerCooldown,
				// The chaos bench must push every request through admission,
				// the brownout ladder, and the faulted scan path; semantic
				// cache hits would bypass all three.
				SemCacheEntries: -1,
				SemCacheViews:   -1,
				PoolSize:        -1,
				Logf:            func(string, ...any) {}, // chaos noise stays out of the report
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process server on %s (faults: %v)\n", base, injector != nil)
	}

	client := &http.Client{Timeout: *clientTimeout}
	fmt.Printf("driving %d sessions x %d queries over %d tenants...\n", *sessions, *queries, *tenants)
	start := time.Now()
	results := make([][]sample, *sessions)
	var wg sync.WaitGroup
	for w := 0; w < *sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = driveSession(client, base, *dataset, w, *tenants, *queries)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	report := summarize(results, wall)
	report["config"] = map[string]any{
		"target": *target, "sessions": *sessions, "queries": *queries,
		"tenants": *tenants, "dataset": *dataset,
		"maxConcurrent": *maxConcurrent, "queueDepth": *queueDepth,
		"tenantRate": *tenantRate, "requestTimeoutMs": requestTimeout.Milliseconds(),
		"brownoutTargetMs": brownoutTarget.Milliseconds(), "breakerThreshold": *breakerThreshold,
	}
	if serving := fetchServing(client, base); serving != nil {
		report["serving"] = serving
	}
	if injector != nil {
		report["faults"] = injector.Stats()
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *outPath)
	fmt.Printf("requests=%v ok=%v shedRate=%.3f degradedRatio=%.3f p50=%.1fms p99=%.1fms unexplained5xx=%v grammarInvalid=%v\n",
		report["requests"], report["ok"], report["shedRate"], report["degradedRatio"],
		report["speechLatencyMs"].(map[string]float64)["p50"],
		report["speechLatencyMs"].(map[string]float64)["p99"],
		report["unexplained5xx"], report["grammarInvalid"])

	if *assert {
		return assertInvariants(report, *maxShedRate)
	}
	return nil
}

// serverConfig bundles the in-process server inputs.
type serverConfig struct {
	seed       int64
	flightRows int
	injector   *faults.Injector
	opts       web.Options
}

// startServer builds the datasets and serves the web API on a loopback
// listener, returning the http.Server for shutdown.
func startServer(sc serverConfig) (*http.Server, net.Listener, error) {
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: sc.flightRows, Seed: sc.seed})
	if err != nil {
		return nil, nil, err
	}
	salaries, err := datagen.Salaries(datagen.SalariesConfig{Seed: sc.seed + 1})
	if err != nil {
		return nil, nil, err
	}
	cfg := core.Config{
		Seed:                 sc.seed,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 500,
		MaxTreeNodes:         50000,
	}
	if sc.injector != nil {
		cfg.Scanner = sc.injector.Scanner
	}
	srv, err := web.NewServerWith(cfg, sc.opts,
		web.DatasetInfo{Name: "flights", Dataset: flights, MeasureCol: "cancelled",
			MeasureDesc: "average cancellation probability", Format: speech.PercentFormat},
		web.DatasetInfo{Name: "salaries", Dataset: salaries, MeasureCol: "midCareerSalary",
			MeasureDesc: "average mid-career salary", Format: speech.ThousandsFormat},
	)
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return hs, ln, nil
}

// driveSession walks one session through the command script, alternating
// vocalization methods, and returns its samples.
func driveSession(client *http.Client, base, dataset string, w, tenants, queries int) []sample {
	session := fmt.Sprintf("load-%d", w)
	tenant := fmt.Sprintf("tenant-%d", w%tenants)
	out := make([]sample, 0, queries)
	for q := 0; q < queries; q++ {
		input := script[(w+q)%len(script)]
		method := "this"
		if (w+q)%2 == 1 {
			method = "prior"
		}
		out = append(out, postQuery(client, base, session, tenant, dataset, input, method))
	}
	return out
}

// postQuery issues one query and classifies the outcome.
func postQuery(client *http.Client, base, session, tenant, dataset, input, method string) sample {
	body, _ := json.Marshal(map[string]string{
		"session": session, "dataset": dataset, "input": input, "method": method,
	})
	req, err := http.NewRequest("POST", base+"/api/query", bytes.NewReader(body))
	if err != nil {
		return sample{code: -1}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{code: -1, wall: time.Since(start)}
	}
	defer resp.Body.Close()
	s := sample{code: resp.StatusCode, wall: time.Since(start)}
	var payload struct {
		Speech    string `json:"speech"`
		ServedBy  string `json:"servedBy"`
		Origin    string `json:"origin"`
		Cache     string `json:"cache"`
		Degraded  bool   `json:"degraded"`
		Fallback  string `json:"fallback"`
		DataEpoch int64  `json:"dataEpoch"`
		Stale     bool   `json:"stale"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return s
	}
	if resp.StatusCode == http.StatusOK && payload.Speech != "" {
		s.hasSpeech = true
		s.servedBy = payload.ServedBy
		s.origin = payload.Origin
		s.cache = payload.Cache
		s.degraded = payload.Degraded
		s.fallback = payload.Fallback
		s.speech = payload.Speech
		s.grammarOK = validSpeech(payload.Speech, payload.ServedBy, payload.Origin)
		s.dataEpoch = payload.DataEpoch
		s.stale = payload.Stale
	}
	return s
}

// validSpeech checks the answer against the grammar of the vocalizer that
// produced it: holistic answers must parse under the speech grammar; the
// prior baseline's enumeration just needs well-formed sentences. A cache
// replay is validated against the vocalizer that originally produced it
// (the response's origin field).
func validSpeech(text, servedBy, origin string) bool {
	if servedBy == "cache" {
		servedBy = origin
	}
	if servedBy == "prior" {
		t := strings.TrimSpace(text)
		return t != "" && strings.HasSuffix(t, ".")
	}
	return (speech.Parser{}).Conforms(text)
}

// summarize aggregates the samples into the benchmark report.
func summarize(results [][]sample, wall time.Duration) map[string]any {
	status := map[string]int{}
	var total, ok, speechOK, degraded, invalid, shed, unexplained5xx, transport int
	fallbacks := map[string]int{}
	var latencies []time.Duration
	var invalidExamples []string
	for _, samples := range results {
		for _, s := range samples {
			total++
			if s.code < 0 {
				transport++
				continue
			}
			status[fmt.Sprintf("%d", s.code)]++
			switch {
			case s.code == http.StatusTooManyRequests || s.code == http.StatusServiceUnavailable:
				shed++
			case s.code >= 500:
				// 503 is an intentional shed; any other 5xx is a bug.
				unexplained5xx++
			}
			if s.code == http.StatusOK {
				ok++
			}
			if s.hasSpeech {
				speechOK++
				latencies = append(latencies, s.wall)
				if s.degraded {
					degraded++
				}
				if s.fallback != "" {
					fallbacks[s.fallback]++
				}
				if !s.grammarOK {
					invalid++
					if len(invalidExamples) < 3 {
						invalidExamples = append(invalidExamples, s.speech)
					}
				}
			}
		}
	}
	report := map[string]any{
		"bench":           "serving",
		"num_cpu":         runtime.NumCPU(),
		"gomaxprocs":      runtime.GOMAXPROCS(0),
		"wallMs":          float64(wall) / float64(time.Millisecond),
		"requests":        total,
		"ok":              ok,
		"speechAnswers":   speechOK,
		"status":          status,
		"transportErrors": transport,
		"unexplained5xx":  unexplained5xx,
		"grammarInvalid":  invalid,
		"speechLatencyMs": map[string]float64{
			"p50": quantileMS(latencies, 0.50),
			"p95": quantileMS(latencies, 0.95),
			"p99": quantileMS(latencies, 0.99),
		},
		"shedRate":      ratio(shed, total),
		"degradedRatio": ratio(degraded, speechOK),
		"fallbacks":     fallbacks,
	}
	if len(invalidExamples) > 0 {
		report["grammarInvalidExamples"] = invalidExamples
	}
	return report
}

// ratio is n/d guarding the empty denominator.
func ratio(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// quantileMS returns the q-quantile of latencies in milliseconds.
func quantileMS(latencies []time.Duration, q float64) float64 {
	if len(latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// fetchServing pulls the server's overload-resilience stats (ladder-step
// counts, breaker states, per-tenant outcomes) for the report.
func fetchServing(client *http.Client, base string) any {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/api/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var payload struct {
		Serving json.RawMessage `json:"serving"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil || len(payload.Serving) == 0 {
		return nil
	}
	return payload.Serving
}

// semcacheParams bundles the semcache workload inputs.
type semcacheParams struct {
	target         string
	dataset        string
	seed           int64
	requests       int
	distinct       int
	zipfS          float64
	flightRows     int
	maxConcurrent  int
	requestTimeout time.Duration
	clientTimeout  time.Duration
	outPath        string
	assert         bool
}

// canonQuery is one distinct canonical query with its equivalent spoken
// phrasings: every phrasing parses to the same normalized olap.Query, so
// any of them must hit a cache entry stored under any other.
type canonQuery struct {
	name      string
	phrasings []string
}

// semcacheUniverse enumerates distinct canonical flight queries: singles
// first, then cross-hierarchy pairs. Each dimension carries its spoken
// aliases ("carrier" for "airline"), and pairs are phrased in both orders
// — the wordings differ, the canonical queries do not.
func semcacheUniverse(n int) ([]canonQuery, error) {
	type dim struct {
		hierarchy string // levels of one hierarchy never pair up: the
		// parser folds them into a single group level, which would
		// collapse two universe entries into one canonical query
		aliases []string
	}
	dims := []dim{
		{"airport", []string{"region"}},
		{"date", []string{"season"}},
		{"airline", []string{"airline", "carrier", "operator"}},
		{"airport", []string{"state"}},
		{"date", []string{"month"}},
		{"airport", []string{"city"}},
	}
	var universe []canonQuery
	for _, d := range dims {
		var ph []string
		for _, a := range d.aliases {
			ph = append(ph, "how does cancellation depend on "+a)
		}
		universe = append(universe, canonQuery{name: d.aliases[0], phrasings: ph})
	}
	for i, a := range dims {
		for _, b := range dims[i+1:] {
			if a.hierarchy == b.hierarchy {
				continue
			}
			var ph []string
			for _, x := range a.aliases {
				for _, y := range b.aliases {
					ph = append(ph,
						"how does cancellation depend on "+x+" and "+y,
						"how does cancellation depend on "+y+" and "+x)
				}
			}
			universe = append(universe, canonQuery{name: a.aliases[0] + "+" + b.aliases[0], phrasings: ph})
		}
	}
	if n < 1 || n > len(universe) {
		return nil, fmt.Errorf("-distinct must be 1..%d, got %d", len(universe), n)
	}
	return universe[:n], nil
}

// runSemcache drives the Zipf-repetition cache benchmark: every request
// opens a fresh session (hits must come from the semantic cache, never
// from per-session dialogue state) and asks a Zipf-popular canonical
// query through a random equivalent phrasing.
func runSemcache(p semcacheParams) error {
	if p.dataset != "flights" {
		return fmt.Errorf("the semcache workload phrases flight queries; -dataset must be flights")
	}
	if p.zipfS <= 1 {
		return fmt.Errorf("-zipf-s must be > 1, got %g", p.zipfS)
	}
	universe, err := semcacheUniverse(p.distinct)
	if err != nil {
		return err
	}

	base := p.target
	if base == "" {
		// No chaos injection and no overload machinery: the bench isolates
		// cache-hit cost against cold vocalizer cost. Semantic-cache and
		// pool options are left zero so the server runs its defaults.
		srv, ln, serr := startServer(serverConfig{
			seed: p.seed, flightRows: p.flightRows,
			opts: web.Options{
				RequestTimeout: p.requestTimeout,
				MaxConcurrent:  p.maxConcurrent,
				Logf:           func(string, ...any) {},
			},
		})
		if serr != nil {
			return serr
		}
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process server on %s (semantic cache at defaults)\n", base)
	}

	client := &http.Client{Timeout: p.clientTimeout}
	rng := rand.New(rand.NewSource(p.seed))
	zipf := rand.NewZipf(rng, p.zipfS, 1, uint64(len(universe)-1))
	fmt.Printf("issuing %d Zipf(s=%.2f) requests over %d distinct canonical queries...\n",
		p.requests, p.zipfS, len(universe))

	samples := make([]sample, 0, p.requests)
	sampled := map[int]bool{}
	start := time.Now()
	for i := 0; i < p.requests; i++ {
		idx := int(zipf.Uint64())
		sampled[idx] = true
		q := universe[idx]
		phrasing := q.phrasings[rng.Intn(len(q.phrasings))]
		session := fmt.Sprintf("sc-%d", i)
		samples = append(samples, postQuery(client, base, session, "bench", p.dataset, phrasing, "this"))
	}
	wall := time.Since(start)

	report := summarizeSemcache(samples, len(sampled), wall)
	report["config"] = map[string]any{
		"target": p.target, "requests": p.requests, "distinct": p.distinct,
		"zipfS": p.zipfS, "seed": p.seed, "flightRows": p.flightRows,
	}
	if serving := fetchServing(client, base); serving != nil {
		report["serving"] = serving
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(p.outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", p.outPath)
	fmt.Printf("requests=%v hits=%v warm=%v misses=%v hitRate=%.3f hitP50=%.3fms missP50=%.3fms speedup=%.1fx\n",
		report["requests"], report["hits"], report["warm"], report["misses"], report["hitRate"],
		report["hitLatencyMs"].(map[string]float64)["p50"],
		report["missLatencyMs"].(map[string]float64)["p50"],
		report["speedup"])

	if p.assert {
		return assertSemcache(report)
	}
	return nil
}

// summarizeSemcache splits the samples by serving path: tier-A cache
// replays (hit or coalesced), tier-B warmed-view runs, and cold vocalizer
// runs, with separate latency percentiles for replays versus cold runs.
func summarizeSemcache(samples []sample, distinctSampled int, wall time.Duration) map[string]any {
	var hits, coalesced, warm, misses, degraded, invalid, errors int
	var hitLat, missLat []time.Duration
	var invalidExamples []string
	for _, s := range samples {
		if s.code != http.StatusOK || !s.hasSpeech {
			errors++
			continue
		}
		if s.degraded {
			degraded++
		}
		if !s.grammarOK {
			invalid++
			if len(invalidExamples) < 3 {
				invalidExamples = append(invalidExamples, s.speech)
			}
		}
		switch s.cache {
		case "hit", "coalesced":
			hits++
			if s.cache == "coalesced" {
				coalesced++
			}
			hitLat = append(hitLat, s.wall)
		case "warm":
			warm++
		default:
			misses++
			missLat = append(missLat, s.wall)
		}
	}
	answered := hits + warm + misses
	speedup := 0.0
	if p := quantileMS(hitLat, 0.50); p > 0 {
		speedup = quantileMS(missLat, 0.50) / p
	}
	report := map[string]any{
		"bench":           "semcache",
		"num_cpu":         runtime.NumCPU(),
		"gomaxprocs":      runtime.GOMAXPROCS(0),
		"wallMs":          float64(wall) / float64(time.Millisecond),
		"requests":        len(samples),
		"errors":          errors,
		"distinctSampled": distinctSampled,
		"hits":            hits,
		"coalesced":       coalesced,
		"warm":            warm,
		"misses":          misses,
		"hitRate":         ratio(hits, answered),
		"degraded":        degraded,
		"grammarInvalid":  invalid,
		"hitLatencyMs": map[string]float64{
			"p50": quantileMS(hitLat, 0.50),
			"p99": quantileMS(hitLat, 0.99),
		},
		"missLatencyMs": map[string]float64{
			"p50": quantileMS(missLat, 0.50),
			"p99": quantileMS(missLat, 0.99),
		},
		"speedup": speedup,
	}
	if len(invalidExamples) > 0 {
		report["grammarInvalidExamples"] = invalidExamples
	}
	return report
}

// assertSemcache enforces the cache-bench contract on the report.
func assertSemcache(report map[string]any) error {
	var violations []string
	if n := report["errors"].(int); n > 0 {
		violations = append(violations, fmt.Sprintf("%d requests failed or returned no speech", n))
	}
	if n := report["grammarInvalid"].(int); n > 0 {
		violations = append(violations, fmt.Sprintf("%d grammar-invalid speech answers (replays must stay in-grammar)", n))
	}
	if report["hits"].(int) == 0 {
		violations = append(violations, "the semantic cache never hit under a Zipf repetition workload")
	}
	hitP50 := report["hitLatencyMs"].(map[string]float64)["p50"]
	missP50 := report["missLatencyMs"].(map[string]float64)["p50"]
	if missP50 > 0 && hitP50 >= missP50 {
		violations = append(violations, fmt.Sprintf("hit p50 %.3fms not below miss p50 %.3fms", hitP50, missP50))
	}
	if len(violations) == 0 {
		fmt.Println("ASSERT OK: cache hit, replays in-grammar, hits faster than cold runs")
		return nil
	}
	return fmt.Errorf("semcache invariants violated:\n  - %s", strings.Join(violations, "\n  - "))
}

// assertInvariants enforces the chaos contract on the report.
func assertInvariants(report map[string]any, maxShedRate float64) error {
	var violations []string
	if n := report["unexplained5xx"].(int); n > 0 {
		violations = append(violations, fmt.Sprintf("%d unexplained 5xx responses (overload must shed with 503, not error)", n))
	}
	if n := report["grammarInvalid"].(int); n > 0 {
		violations = append(violations, fmt.Sprintf("%d grammar-invalid speech answers (degradation must stay in-grammar)", n))
	}
	if r := report["shedRate"].(float64); r > maxShedRate {
		violations = append(violations, fmt.Sprintf("shed rate %.3f exceeds %.3f", r, maxShedRate))
	}
	if report["speechAnswers"].(int) == 0 {
		violations = append(violations, "no speech answer ever succeeded")
	}
	if n := report["transportErrors"].(int); n > 0 {
		violations = append(violations, fmt.Sprintf("%d transport errors", n))
	}
	if len(violations) == 0 {
		fmt.Println("ASSERT OK: zero unexplained 5xx, all speech in-grammar, shed rate bounded")
		return nil
	}
	return fmt.Errorf("chaos invariants violated:\n  - %s", strings.Join(violations, "\n  - "))
}
