// Command datagen writes the synthetic benchmark datasets to CSV files so
// they can be inspected or loaded by external tools.
//
// Usage:
//
//	datagen [-out DIR] [-flight-rows N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", ".", "output directory")
	flightRows := flag.Int("flight-rows", datagen.DefaultFlightRows, "number of flight rows (paper: 5300000)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: *flightRows, Seed: *seed})
	if err != nil {
		return err
	}
	flightsPath := filepath.Join(*out, "flights.csv")
	if err := flights.Table().WriteCSVFile(flightsPath); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, ~%.1f MB)\n", flightsPath,
		flights.Table().NumRows(), float64(flights.Table().ApproxBytes())/1e6)

	salaries, err := datagen.Salaries(datagen.SalariesConfig{Seed: *seed + 1})
	if err != nil {
		return err
	}
	salariesPath := filepath.Join(*out, "salaries.csv")
	if err := salaries.Table().WriteCSVFile(salariesPath); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, ~%.1f KB)\n", salariesPath,
		salaries.Table().NumRows(), float64(salaries.Table().ApproxBytes())/1e3)
	return nil
}
