// Command benchrunner regenerates the paper's tables and figures against
// the synthetic datasets and prints them in the same layout.
//
// Usage:
//
//	benchrunner [-exp all|fig3|table2|table5|table6|table7|table8|table11|table12|table13|ablations|datascaling|scaling|pipeline|planner]
//	            [-flight-rows N] [-sessions N] [-seed S]
//	            [-workers N] [-gen-workers N] [-bench-out FILE]  (pipeline)
//	            [-workers N] [-planner-rounds N] [-bench-out FILE]  (planner)
//	            [-planner-rounds N] [-bench-out FILE]  (scaling)
//
// Pass -flight-rows 5300000 for paper-scale runs (slower; the default
// 200000 preserves the published shapes at a fraction of the time).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment id (all, fig3, table2, table5, table6, table7, table8, table11, table12, table13, ablations, datascaling, scaling, pipeline, planner)")
	flightRows := flag.Int("flight-rows", experiments.DefaultBenchFlightRows, "flight dataset rows (paper: 5300000)")
	sessions := flag.Int("sessions", 20, "exploratory study sessions per dataset")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "pipeline: eval workers (0 = GOMAXPROCS); planner: max sampling workers (0 = 4)")
	genWorkers := flag.Int("gen-workers", 0, "pipeline: datagen workers (<= 1 sequential)")
	plannerRounds := flag.Int("planner-rounds", 0, "planner: tree-sampling rounds per measurement (0 = 20000)")
	benchOut := flag.String("bench-out", "", "pipeline/planner: machine-readable output file (default BENCH_<exp>.json, \"-\" to skip)")
	flag.Parse()

	// writeBench persists a machine-readable result to the per-experiment
	// default file, an explicit override, or nowhere ("-").
	writeBench := func(def string, write func(w io.Writer) error) error {
		out := *benchOut
		if out == "" {
			out = def
		}
		if out == "-" {
			return nil
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
		return nil
	}

	// The pipeline experiment generates its own dataset (it measures the
	// generator too), so it runs before the shared setup.
	if *exp == "pipeline" {
		res, err := experiments.Pipeline(experiments.PipelineConfig{
			Rows: *flightRows, Seed: *seed, Workers: *workers, GenWorkers: *genWorkers,
		})
		if err != nil {
			return err
		}
		experiments.PrintPipeline(os.Stdout, res)
		return writeBench("BENCH_pipeline.json", res.WriteJSON)
	}

	// The multicore scaling sweep owns its dataset and changes GOMAXPROCS
	// per column, so it runs alone, before the shared setup.
	if *exp == "scaling" {
		res, err := experiments.ScalingSweep(experiments.ScalingConfig{
			Rows: *flightRows, Seed: *seed, Rounds: *plannerRounds,
		})
		if err != nil {
			return err
		}
		experiments.PrintScalingSweep(os.Stdout, res)
		return writeBench("BENCH_scaling.json", res.WriteJSON)
	}

	// The planner experiment likewise owns its dataset and skips the
	// shared setup.
	if *exp == "planner" {
		res, err := experiments.Planner(experiments.PlannerConfig{
			Rows: *flightRows, Seed: *seed, Rounds: *plannerRounds, MaxWorkers: *workers,
		})
		if err != nil {
			return err
		}
		experiments.PrintPlanner(os.Stdout, res)
		return writeBench("BENCH_planner.json", res.WriteJSON)
	}

	fmt.Printf("generating datasets (flights: %d rows)...\n", *flightRows)
	setup, err := experiments.NewSetup(*flightRows, *seed)
	if err != nil {
		return err
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false
	w := os.Stdout

	if want("table11") {
		ran = true
		experiments.PrintTable11(w, experiments.Table11(setup))
		fmt.Fprintln(w)
	}
	if want("table2") {
		ran = true
		res := experiments.Table2(setup)
		experiments.PrintTable2(w, res)
		fmt.Fprintln(w)
		experiments.PrintTable10(w, res)
		fmt.Fprintln(w)
	}
	if want("fig3") {
		ran = true
		rows, err := experiments.Figure3(setup)
		if err != nil {
			return err
		}
		experiments.PrintFigure3(w, rows)
		cmp, err := experiments.PriorOnFlights(setup)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "prior baseline on -,RD: latency %v, %d chars\n\n", cmp.Latency, cmp.SpeechLen)
	}
	if want("table5") {
		ran = true
		rows, err := experiments.Table5(setup)
		if err != nil {
			return err
		}
		experiments.PrintSpeeches(w, "Table 5 — speeches for the region x season query", rows)
		fmt.Fprintln(w)
	}
	if want("table6") {
		ran = true
		studies, err := experiments.Table6And14(setup)
		if err != nil {
			return err
		}
		experiments.PrintTable6And14(w, studies)
		fmt.Fprintln(w)
	}
	if want("table7") {
		ran = true
		facts, err := experiments.Table7(setup)
		if err != nil {
			return err
		}
		experiments.PrintTable7(w, facts)
		fmt.Fprintln(w)
	}
	if want("table8") || want("table9") {
		ran = true
		studies, err := experiments.Table8And9(setup, *sessions)
		if err != nil {
			return err
		}
		experiments.PrintTable8And9(w, studies)
		fmt.Fprintln(w)
	}
	if want("table12") {
		ran = true
		rows, err := experiments.Table12(setup)
		if err != nil {
			return err
		}
		experiments.PrintTable12(w, rows)
		fmt.Fprintln(w)
	}
	if want("table13") {
		ran = true
		rows, err := experiments.Table13(setup)
		if err != nil {
			return err
		}
		experiments.PrintSpeeches(w, "Table 13 — speeches for the state x month query", rows)
		fmt.Fprintln(w)
	}
	if want("ablations") {
		ran = true
		type ablation struct {
			title string
			run   func(*experiments.Setup) ([]experiments.AblationRow, error)
		}
		metrics, err := experiments.MetricComparison(setup)
		if err != nil {
			return err
		}
		experiments.PrintMetricComparison(w, metrics)
		fmt.Fprintln(w)
		for _, a := range []ablation{
			{"Ablation — UCT vs uniform tree sampling", experiments.AblationUCTVsUniform},
			{"Ablation — estimate derivation (running mean vs fixed resample)", experiments.AblationResample},
			{"Ablation — relative vs absolute refinements", experiments.AblationRelativeVsAbsolute},
			{"Ablation — belief sigma as fraction of the mean", experiments.AblationSigma},
			{"Ablation — refinement budget k", experiments.AblationFragments},
			{"Ablation — on-line sampling vs materialized sample view", experiments.AblationWarmStart},
			{"Ablation — planning rounds per sentence (pipelining budget)", experiments.AblationPlanningBudget},
		} {
			rows, err := a.run(setup)
			if err != nil {
				return err
			}
			experiments.PrintAblation(w, a.title, rows)
			fmt.Fprintln(w)
		}
	}
	if want("datascaling") {
		ran = true
		rows, err := experiments.DataScaling(*seed, nil)
		if err != nil {
			return err
		}
		experiments.PrintDataScaling(w, rows)
		fmt.Fprintln(w)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q; valid: all fig3 table2 table5 table6 table7 table8 table11 table12 table13 ablations datascaling scaling pipeline planner",
			strings.TrimSpace(*exp))
	}
	return nil
}
