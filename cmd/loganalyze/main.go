// Command loganalyze aggregates a voice-OLAP query log (the JSON served by
// voiceolapd's /api/log endpoint) into Table 9-style statistics: per-method
// speech lengths and latencies, and per-session query counts — the same
// analysis the paper ran over its study logs.
//
// Usage:
//
//	loganalyze [-in log.json]           # or pipe the log on stdin
//	curl -s localhost:8080/api/log | loganalyze
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/web"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loganalyze:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "log JSON file (default: stdin)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var entries []web.QueryLogEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("decoding log: %w", err)
	}
	a := web.AnalyzeLog(entries)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tqueries\tavgChars\tmaxChars\tavgLatencyMs\tmaxLatencyMs")
	for _, m := range a.Methods {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%.1f\n",
			m.Method, m.Queries, m.AvgChars, m.MaxChars, m.AvgLatencyMS, m.MaxLatencyMS)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "session\tqueries\tduration")
	for _, s := range a.Sessions {
		fmt.Fprintf(w, "%s\t%d\t%v\n", s.Session, s.Queries, s.Last.Sub(s.First))
	}
	return w.Flush()
}
