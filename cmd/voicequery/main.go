// Command voicequery is an interactive voice-OLAP session in the terminal:
// it loads one of the synthetic datasets, interprets keyword commands
// exactly like the paper's study interface, and "speaks" the vocalized
// answer by printing it (optionally with real-time playback pacing).
//
// Usage:
//
//	voicequery [-dataset flights|salaries] [-rows N] [-method holistic|optimal|unmerged|prior] [-speak]
//
// Custom data (CSV table plus hierarchy definition files):
//
//	voicequery -table sales.csv -schema "city:string,sales:float" \
//	   -dim "name=location;column=city;context=stores in;def=region.csv" \
//	   -measure sales -measure-desc "average sales" -format plain
//
// Example session:
//
//	> how does cancellation depend on region and season
//	> drill down into the start airport
//	> only flights operated by Alaska Airlines Inc.
//	> help
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ingest"
	"repro/internal/nlq"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

// dimFlags collects repeatable -dim flags.
type dimFlags []string

func (d *dimFlags) String() string { return strings.Join(*d, " ") }

func (d *dimFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "voicequery:", err)
		os.Exit(1)
	}
}

func run() error {
	datasetName := flag.String("dataset", "flights", "built-in dataset: flights or salaries")
	rows := flag.Int("rows", 200000, "flight dataset rows (ignored for salaries)")
	method := flag.String("method", "holistic", "vocalizer: holistic, optimal, unmerged, or prior")
	speak := flag.Bool("speak", false, "pace output like real speech playback")
	seed := flag.Int64("seed", 1, "random seed")
	tablePath := flag.String("table", "", "custom data CSV (overrides -dataset)")
	schemaSpec := flag.String("schema", "", "custom data schema, e.g. city:string,sales:float")
	measureCol := flag.String("measure", "", "custom measure column")
	measureDesc := flag.String("measure-desc", "", "spoken measure description")
	formatName := flag.String("format", "plain", "custom value format: percent, thousands, plain, count")
	var dims dimFlags
	flag.Var(&dims, "dim", "custom dimension spec (repeatable): name=…;column=…;context=…;root=…;def=path.csv")
	flag.Parse()

	var (
		dataset *olap.Dataset
		col     string
		desc    string
		format  speech.ValueFormat
		err     error
	)
	switch {
	case *tablePath != "":
		dataset, col, desc, format, err = loadCustom(*tablePath, *schemaSpec, *measureCol, *measureDesc, *formatName, dims)
	case *datasetName == "flights":
		dataset, err = datagen.Flights(datagen.FlightsConfig{Rows: *rows, Seed: *seed})
		col, desc, format = "cancelled", "average cancellation probability", speech.PercentFormat
	case *datasetName == "salaries":
		dataset, err = datagen.Salaries(datagen.SalariesConfig{Seed: *seed})
		col, desc, format = "midCareerSalary", "average mid-career salary", speech.ThousandsFormat
	default:
		return fmt.Errorf("unknown dataset %q", *datasetName)
	}
	if err != nil {
		return err
	}

	sess, err := nlq.NewSession(dataset, olap.Avg, col, desc)
	if err != nil {
		return err
	}

	label := *datasetName
	if *tablePath != "" {
		label = *tablePath
	}
	fmt.Printf("Loaded %s (%d rows). Say 'help' for keywords; 'quit' to exit.\n",
		label, dataset.Table().NumRows())
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !scanner.Scan() {
			break
		}
		input := strings.TrimSpace(scanner.Text())
		if input == "quit" || input == "exit" {
			break
		}
		resp, err := sess.Parse(input)
		if err != nil {
			fmt.Println(err)
			continue
		}
		if resp.Message != "" {
			fmt.Println(resp.Message)
		}
		if !resp.IsQuery {
			continue
		}
		if err := vocalize(dataset, sess.Query(), *method, format, *seed, *speak); err != nil {
			fmt.Println("error:", err)
		}
	}
	return scanner.Err()
}

// loadCustom assembles a dataset from user-provided CSV files.
func loadCustom(tablePath, schemaSpec, measureCol, measureDesc, formatName string, dims []string) (*olap.Dataset, string, string, speech.ValueFormat, error) {
	if measureCol == "" {
		return nil, "", "", 0, fmt.Errorf("custom data needs -measure")
	}
	schema, err := ingest.ParseSchema(schemaSpec)
	if err != nil {
		return nil, "", "", 0, err
	}
	var specs []ingest.DimSpec
	for _, d := range dims {
		spec, err := ingest.ParseDimSpec(d)
		if err != nil {
			return nil, "", "", 0, err
		}
		specs = append(specs, spec)
	}
	dataset, err := ingest.Load("custom", tablePath, schema, specs)
	if err != nil {
		return nil, "", "", 0, err
	}
	desc := measureDesc
	if desc == "" {
		desc = "average " + measureCol
	}
	var format speech.ValueFormat
	switch formatName {
	case "percent":
		format = speech.PercentFormat
	case "thousands":
		format = speech.ThousandsFormat
	case "count":
		format = speech.CountFormat
	case "plain", "":
		format = speech.PlainFormat
	default:
		return nil, "", "", 0, fmt.Errorf("unknown format %q", formatName)
	}
	return dataset, measureCol, desc, format, nil
}

// vocalize runs the chosen approach and prints the answer with its latency.
func vocalize(d *olap.Dataset, q olap.Query, method string, format speech.ValueFormat, seed int64, speak bool) error {
	if method == "prior" {
		out, err := baseline.NewPrior(d, q, baseline.Config{Format: format, MergeValues: true}).Vocalize()
		if err != nil {
			return err
		}
		fmt.Printf("[latency %v, %d chars]\n", out.Latency.Round(time.Millisecond), len(out.Text))
		emit(out.Text, speak)
		return nil
	}
	cfg := core.Config{
		Format:               format,
		Seed:                 seed,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 3000,
		MaxTreeNodes:         100000,
	}
	var v core.Vocalizer
	switch method {
	case "holistic":
		v = core.NewHolistic(d, q, cfg)
	case "optimal":
		v = core.NewOptimal(d, q, cfg)
	case "unmerged":
		v = core.NewUnmerged(d, q, cfg)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	out, err := v.Vocalize()
	if err != nil {
		return err
	}
	fmt.Printf("[latency %v, %d rows sampled, %d tree samples]\n",
		out.Latency.Round(time.Microsecond), out.RowsRead, out.TreeSamples)
	emit(out.Text(), speak)
	return nil
}

// emit prints text, optionally paced at speaking speed.
func emit(text string, speak bool) {
	if !speak {
		fmt.Println(text)
		return
	}
	for _, sentence := range strings.SplitAfter(text, ". ") {
		fmt.Print(sentence)
		time.Sleep(time.Duration(float64(len(sentence)) / voice.DefaultCharsPerSecond * float64(time.Second)))
	}
	fmt.Println()
}
