// Command scenarios is the live runner of the declarative conformance
// registry (internal/scenario): it drives every registered scenario over
// HTTP — against a voiceolapd-style server it boots in-process per fault/
// admission profile, or against an external -target — and emits the
// pass/fail matrix with per-scenario latency, degraded, fallback, and
// shed counts as BENCH_scenarios.json.
//
// Usage:
//
//	scenarios [-target http://host:port] [-attr multiturn] [-list]
//	          [-flight-rows 5000] [-seed 1] [-client-timeout 30s]
//	          [-out BENCH_scenarios.json] [-assert]
//
// Against an external -target the live-tuned scenarios (fault injection,
// tight deadlines, tuned admission) are skipped: their expectations only
// hold on a server whose profile the runner controls.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run() error {
	target := flag.String("target", "", "URL of a running voiceolapd (empty: boot in-process servers per profile)")
	attr := flag.String("attr", "", "only run scenarios carrying this attr tag")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	flightRows := flag.Int("flight-rows", 5000, "in-process: flights dataset rows")
	seed := flag.Int64("seed", 1, "in-process: dataset and planner seed")
	clientTimeout := flag.Duration("client-timeout", 30*time.Second, "per-request client timeout")
	outPath := flag.String("out", "BENCH_scenarios.json", "benchmark output path")
	assert := flag.Bool("assert", false, "exit nonzero when any scenario fails")
	flag.Parse()

	specs := scenario.All()
	if *attr != "" {
		var kept []*scenario.Spec
		for _, s := range specs {
			if s.HasAttr(*attr) {
				kept = append(kept, s)
			}
		}
		specs = kept
	}
	if *list {
		for _, s := range specs {
			fmt.Printf("%-40s %v\n    %s\n", s.Name, s.Attrs, s.Desc)
		}
		return nil
	}
	if len(specs) == 0 {
		return fmt.Errorf("no scenarios match -attr %q", *attr)
	}

	var pool *scenario.ServerPool
	if *target == "" {
		pool = scenario.NewServerPool(scenario.PoolConfig{FlightRows: *flightRows, Seed: *seed})
		defer pool.Close()
	}
	client := &http.Client{Timeout: *clientTimeout}
	runID := fmt.Sprintf("%d", time.Now().UnixNano())

	start := time.Now()
	rows := make([]scenario.ScenarioReport, 0, len(specs))
	for _, s := range specs {
		if *target != "" && s.LiveTuned() {
			fmt.Printf("SKIP %-42s (live-tuned, external target)\n", s.Name)
			rows = append(rows, scenario.SkippedReport(s))
			continue
		}
		base := *target
		if base == "" {
			b, err := pool.Server(s)
			if err != nil {
				return fmt.Errorf("boot profile for %s: %w", s.Name, err)
			}
			base = b
		}
		var rel scenario.Reloader
		if pool != nil {
			rel = pool
		}
		res, err := scenario.RunLive(context.Background(), client, base, s, runID, rel)
		if err != nil {
			return fmt.Errorf("run %s: %w", s.Name, err)
		}
		row := scenario.Summarize(res)
		rows = append(rows, row)
		verdict := "PASS"
		if !row.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("%s %-42s steps=%d speech=%d degraded=%d shed=%d\n",
			verdict, s.Name, row.Steps, row.SpeechAnswers, row.Degraded, row.Shed)
		for _, v := range row.Violations {
			fmt.Printf("     - %s\n", v.String())
		}
	}

	report := scenario.NewReport("live", time.Since(start), rows)
	report.Config = map[string]any{
		"target": *target, "flightRows": *flightRows, "seed": *seed, "attr": *attr,
	}
	if pool != nil {
		if st := pool.InjectorStats(); st.Scans > 0 {
			report.Faults = st
		}
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *outPath)
	fmt.Printf("scenarios: %d pass, %d fail, %d skipped\n", report.Pass, report.Fail, report.Skip)
	if *assert && report.Fail > 0 {
		return fmt.Errorf("%d scenario(s) failed", report.Fail)
	}
	return nil
}
