// Package repro_bench holds the benchmark harness that regenerates every
// table and figure of the paper (one benchmark per experiment) plus
// microbenchmarks backing the complexity analysis of Appendix A and the
// ablation sweeps of DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Shapes, not absolute numbers, are the reproduction target; see
// EXPERIMENTS.md for the paper-versus-measured record.
package repro_bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/belief"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/mcts"
	"repro/internal/olap"
	"repro/internal/sampling"
	"repro/internal/speech"
	"repro/internal/voice"
)

// benchRows keeps benchmark dataset generation moderate; run cmd/benchrunner
// with -flight-rows 5300000 for paper scale.
const benchRows = 100000

var (
	setupOnce sync.Once
	setupVal  *experiments.Setup
	setupErr  error
)

func benchSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	setupOnce.Do(func() {
		setupVal, setupErr = experiments.NewSetup(benchRows, 1)
	})
	if setupErr != nil {
		b.Fatalf("setup: %v", setupErr)
	}
	return setupVal
}

// --- One benchmark per paper table/figure ---

// BenchmarkFigure3 regenerates Figure 3: latency and quality of optimal,
// holistic, and unmerged across the eight flight queries.
func BenchmarkFigure3(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(s)
		if err != nil {
			b.Fatal(err)
		}
		sum := experiments.Summarize(rows)
		b.ReportMetric(float64(sum.MeanLatency["optimal"])/1e6, "optLatMs")
		b.ReportMetric(float64(sum.MeanLatency["holistic"])/1e6, "holLatMs")
		b.ReportMetric(sum.MeanQuality["holistic"], "holQuality")
		b.ReportMetric(sum.MeanQuality["unmerged"], "unmQuality")
	}
}

// BenchmarkTable2Pilot regenerates the pilot-study consistency counts.
func BenchmarkTable2Pilot(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(s)
		b.ReportMetric(float64(res.PerAspect["Variance"].Consistent), "varConsistent")
	}
}

// BenchmarkTable5Speeches regenerates the three alternative speeches for
// the region-by-season query with their exact qualities.
func BenchmarkTable5Speeches(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Approach {
			case "optimal":
				b.ReportMetric(r.Quality, "optQuality")
			case "holistic":
				b.ReportMetric(r.Quality, "holQuality")
			case "unmerged":
				b.ReportMetric(r.Quality, "unmQuality")
			}
		}
	}
}

// BenchmarkTable6Errors regenerates the estimation study: median absolute
// user error per approach (Table 6) and tendency accuracy (Table 14).
func BenchmarkTable6Errors(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		studies, err := experiments.Table6And14(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range studies {
			switch st.Approach {
			case "optimal":
				b.ReportMetric(st.MedianAbsError, "optMedErr")
			case "holistic":
				b.ReportMetric(st.MedianAbsError, "holMedErr")
			case "unmerged":
				b.ReportMetric(st.MedianAbsError, "unmMedErr")
			}
		}
	}
}

// BenchmarkTable7Facts regenerates the extracted example facts.
func BenchmarkTable7Facts(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		facts, err := experiments.Table7(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(facts)), "facts")
	}
}

// BenchmarkTable8Preferences regenerates the exploratory preference study
// (reduced session count; cmd/benchrunner runs the full 20).
func BenchmarkTable8Preferences(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		studies, err := experiments.Table8And9(s, 4)
		if err != nil {
			b.Fatal(err)
		}
		flights := studies[1].Result
		thisVotes := flights.Prefs[3] + flights.Prefs[4]
		priorVotes := flights.Prefs[0] + flights.Prefs[1]
		b.ReportMetric(float64(thisVotes), "thisVotes")
		b.ReportMetric(float64(priorVotes), "priorVotes")
	}
}

// BenchmarkTable9Lengths regenerates the speech-length comparison: prior
// output dwarfs ours, especially on the multi-dimensional flights data.
func BenchmarkTable9Lengths(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		studies, err := experiments.Table8And9(s, 3)
		if err != nil {
			b.Fatal(err)
		}
		fl := studies[1].Result.Lengths
		b.ReportMetric(float64(fl.ThisAvg), "thisAvg")
		b.ReportMetric(float64(fl.PriorAvg), "priorAvg")
		b.ReportMetric(float64(fl.PriorMax), "priorMax")
	}
}

// BenchmarkTable11Stats regenerates the dataset statistics.
func BenchmarkTable11Stats(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := experiments.Table11(s)
		b.ReportMetric(float64(stats[1].Rows), "flightRows")
	}
}

// BenchmarkTable12FullResult regenerates the exact region-by-season result.
func BenchmarkTable12FullResult(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table12(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Cancellation, "topCell")
	}
}

// BenchmarkTable13Speeches regenerates the fine-grained query comparison.
func BenchmarkTable13Speeches(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table13(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

func runAblation(b *testing.B, f func(*experiments.Setup) ([]experiments.AblationRow, error)) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := f(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Quality, metricUnit(r.Variant))
		}
	}
}

// metricUnit turns a human-readable variant label into a metric unit
// (testing.B forbids whitespace in units).
func metricUnit(label string) string {
	var out []rune
	for _, r := range label {
		switch {
		case r == ' ' || r == '\t' || r == '/':
			out = append(out, '-')
		case r == '(' || r == ')':
			// drop
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkAblationUniformVsUCT quantifies what UCT prioritization buys
// over uniform random tree sampling.
func BenchmarkAblationUniformVsUCT(b *testing.B) {
	runAblation(b, experiments.AblationUCTVsUniform)
}

// BenchmarkAblationResampleSize compares running-mean estimates against
// the fixed-size resampling of the paper's literal Algorithm 3.
func BenchmarkAblationResampleSize(b *testing.B) {
	runAblation(b, experiments.AblationResample)
}

// BenchmarkAblationAbsoluteRefinements compares the relative-refinement
// grammar against a disjoint-scope (absolute-claim) restriction.
func BenchmarkAblationAbsoluteRefinements(b *testing.B) {
	runAblation(b, experiments.AblationRelativeVsAbsolute)
}

// BenchmarkAblationSigma sweeps the belief σ around the paper's 50%-of-
// mean choice.
func BenchmarkAblationSigma(b *testing.B) {
	runAblation(b, experiments.AblationSigma)
}

// BenchmarkAblationFragments sweeps the refinement budget k.
func BenchmarkAblationFragments(b *testing.B) {
	runAblation(b, experiments.AblationFragments)
}

// BenchmarkAblationWarmStart compares on-line sampling against a
// materialized sample view (the Section 4.3 extension).
func BenchmarkAblationWarmStart(b *testing.B) {
	runAblation(b, experiments.AblationWarmStart)
}

// BenchmarkAblationPlanningBudget sweeps rounds per sentence — the
// learning curve behind the pipelining argument.
func BenchmarkAblationPlanningBudget(b *testing.B) {
	runAblation(b, experiments.AblationPlanningBudget)
}

// BenchmarkMetricComparison scores the Table 5 speeches under all four
// belief-to-data metrics.
func BenchmarkMetricComparison(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MetricComparison(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Quality, r.Approach+"-quality")
		}
	}
}

// --- Microbenchmarks backing Appendix A ---

type microEnv struct {
	space  *olap.Space
	gen    *speech.Generator
	model  *belief.Model
	cache  *sampling.Cache
	result *olap.Result
}

var (
	microOnce sync.Once
	microVal  *microEnv
	microErr  error
)

func microSetup(b *testing.B) *microEnv {
	b.Helper()
	microOnce.Do(func() {
		d, err := datagen.Flights(datagen.FlightsConfig{Rows: 50000, Seed: 5})
		if err != nil {
			microErr = err
			return
		}
		q := olap.Query{
			Fct: olap.Avg, Col: "cancelled",
			ColDescription: "average cancellation probability",
			GroupBy: []olap.GroupBy{
				{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
				{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
			},
		}
		space, err := olap.NewSpace(d, q)
		if err != nil {
			microErr = err
			return
		}
		result, err := olap.EvaluateSpace(space)
		if err != nil {
			microErr = err
			return
		}
		model, err := belief.NewModel(space, belief.SigmaFromScale(result.GrandValue()))
		if err != nil {
			microErr = err
			return
		}
		cache, err := sampling.NewCache(space)
		if err != nil {
			microErr = err
			return
		}
		for row := 0; row < 20000; row++ {
			cache.Insert(row)
		}
		microVal = &microEnv{space: space, gen: speech.NewGenerator(space, speech.DefaultPrefs(), speech.PercentFormat), model: model, cache: cache, result: result}
	})
	if microErr != nil {
		b.Fatalf("micro setup: %v", microErr)
	}
	return microVal
}

// BenchmarkMCTSSampleComplexity measures one tree-sampling round — the
// O(k·m) inner-loop operation of Theorem A.3 that must stay far below
// sentence playback time.
func BenchmarkMCTSSampleComplexity(b *testing.B) {
	e := microSetup(b)
	rng := rand.New(rand.NewSource(1))
	eval := func(sp *speech.Speech) (float64, bool) {
		a, ok := e.cache.PickAggregate(rng)
		if !ok {
			return 0, false
		}
		est, ok := e.cache.Estimate(a, rng)
		if !ok {
			return 0, false
		}
		return e.model.Reward(sp, a, est), true
	}
	tree, err := mcts.NewTree(e.gen, e.result.GrandValue(), eval, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Sample()
	}
}

// BenchmarkTreeExpand measures full eager tree construction — the O(m^k)
// pre-processing of Theorem A.4, overlapped by the preamble in practice.
func BenchmarkTreeExpand(b *testing.B) {
	e := microSetup(b)
	rng := rand.New(rand.NewSource(2))
	eval := func(*speech.Speech) (float64, bool) { return 0.5, true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := mcts.NewTree(e.gen, e.result.GrandValue(), eval, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tree.NodeCount()), "nodes")
	}
}

// BenchmarkSpeechDBEval measures one speech-vs-sample evaluation
// (Lemma A.2's O(k) operation).
func BenchmarkSpeechDBEval(b *testing.B) {
	e := microSetup(b)
	rng := rand.New(rand.NewSource(3))
	sp := &speech.Speech{Baseline: &speech.Baseline{Value: 0.02, AggName: "average cancellation probability", Format: speech.PercentFormat}}
	sp = sp.Extend(e.gen.Refinements(nil)[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _ := e.cache.PickAggregate(rng)
		est, _ := e.cache.Estimate(a, rng)
		e.model.Reward(sp, a, est)
	}
}

// BenchmarkExactQuality measures full exact speech-quality scoring — what
// the optimal baseline pays per candidate speech.
func BenchmarkExactQuality(b *testing.B) {
	e := microSetup(b)
	sp := &speech.Speech{Baseline: &speech.Baseline{Value: 0.02, AggName: "average cancellation probability", Format: speech.PercentFormat}}
	sp = sp.Extend(e.gen.Refinements(nil)[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.model.Quality(sp, e.result)
	}
}

// BenchmarkCacheInsert measures row classification and cache insertion —
// the per-row cost of the sampling pipeline.
func BenchmarkCacheInsert(b *testing.B) {
	e := microSetup(b)
	cache, err := sampling.NewCache(e.space)
	if err != nil {
		b.Fatal(err)
	}
	n := e.space.Dataset().Table().NumRows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Insert(i % n)
	}
}

// BenchmarkExactEvaluate measures a full exact group-by scan — the cost
// the holistic approach amortizes away.
func BenchmarkExactEvaluate(b *testing.B) {
	e := microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := olap.EvaluateSpace(e.space); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Vectorized row pipeline ---

// BenchmarkClassifyRow measures dense per-row classification (array loads
// into the precompiled position tables) against the batch variant.
func BenchmarkClassifyRow(b *testing.B) {
	e := microSetup(b)
	n := e.space.Dataset().Table().NumRows()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.space.ClassifyRow(i % n)
	}
	b.StopTimer()
	if d := time.Since(start).Seconds(); d > 0 {
		b.ReportMetric(float64(b.N)/d, "rows/s")
	}
}

// BenchmarkClassifyRange measures the batch classifier the parallel scan
// and InsertBatch run on.
func BenchmarkClassifyRange(b *testing.B) {
	e := microSetup(b)
	n := e.space.Dataset().Table().NumRows()
	idxs := make([]int32, n)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.space.ClassifyRange(0, n, idxs)
	}
	b.StopTimer()
	if d := time.Since(start).Seconds(); d > 0 {
		b.ReportMetric(float64(b.N)*float64(n)/d, "rows/s")
	}
}

// BenchmarkInsertBatch measures batched cache insertion — the sampling
// pipeline's per-row cost with classification amortized over a batch.
func BenchmarkInsertBatch(b *testing.B) {
	e := microSetup(b)
	cache, err := sampling.NewCache(e.space)
	if err != nil {
		b.Fatal(err)
	}
	n := e.space.Dataset().Table().NumRows()
	const batchLen = 1024
	rows := make([]int, batchLen)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i * batchLen) % n
		for j := range rows {
			rows[j] = (base + j) % n
		}
		cache.InsertBatch(rows)
	}
	b.StopTimer()
	if d := time.Since(start).Seconds(); d > 0 {
		b.ReportMetric(float64(b.N)*batchLen/d, "rows/s")
	}
}

// BenchmarkEvaluateParallel measures the multicore exact scan against the
// sequential reference, reporting rows/s and the speedup. On a multicore
// machine (4+ cores) the speedup should exceed 3x at benchRows scale; on a
// single core the parallel path degenerates to the sequential one.
func BenchmarkEvaluateParallel(b *testing.B) {
	e := microSetup(b)
	n := e.space.Dataset().Table().NumRows()
	seqStart := time.Now()
	const seqReps = 3
	for i := 0; i < seqReps; i++ {
		if _, err := olap.EvaluateSpaceSequential(e.space); err != nil {
			b.Fatal(err)
		}
	}
	seqSec := time.Since(seqStart).Seconds() / seqReps
	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := olap.EvaluateSpaceWorkers(e.space, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d := time.Since(start).Seconds(); d > 0 {
		parSec := d / float64(b.N)
		b.ReportMetric(float64(n)/parSec, "rows/s")
		if parSec > 0 && seqSec > 0 {
			b.ReportMetric(seqSec/parSec, "speedup")
		}
	}
}

// BenchmarkEvaluateSequential is the single-threaded reference scan for
// the speedup reported by BenchmarkEvaluateParallel.
func BenchmarkEvaluateSequential(b *testing.B) {
	e := microSetup(b)
	n := e.space.Dataset().Table().NumRows()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := olap.EvaluateSpaceSequential(e.space); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d := time.Since(start).Seconds(); d > 0 {
		b.ReportMetric(float64(b.N)*float64(n)/d, "rows/s")
	}
}

// --- Parallel planner and vectorized reward kernel ---

// BenchmarkScorerQuality measures one DFS edge of the incremental quality
// kernel (Push + Quality + Pop): what core.Optimal pays per candidate
// speech. Compare against BenchmarkExactQuality, the scalar Model.Quality
// on an equivalent one-refinement speech.
func BenchmarkScorerQuality(b *testing.B) {
	e := microSetup(b)
	sc := e.model.NewScorer(e.result)
	sp := &speech.Speech{Baseline: &speech.Baseline{Value: 0.02, AggName: "average cancellation probability", Format: speech.PercentFormat}}
	sc.Reset(sp)
	r := e.gen.Refinements(nil)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Push(r)
		sc.Quality()
		sc.Pop()
	}
}

// benchTree builds a search tree over the micro environment with both the
// sequential and the per-worker-seeded evaluator wired, optionally with
// path pooling disabled.
func benchTree(b *testing.B, seed int64, pooling bool) *mcts.Tree {
	b.Helper()
	e := microSetup(b)
	rng := rand.New(rand.NewSource(seed))
	evalRng := rand.New(rand.NewSource(seed + 1))
	seeded := func(sp *speech.Speech, rng *rand.Rand) (float64, bool) {
		a, ok := e.cache.PickAggregate(rng)
		if !ok {
			return 0, false
		}
		est, ok := e.cache.Estimate(a, rng)
		if !ok {
			return 0, false
		}
		return e.model.Reward(sp, a, est), true
	}
	eval := func(sp *speech.Speech) (float64, bool) { return seeded(sp, evalRng) }
	tree, err := mcts.NewTree(e.gen, e.result.GrandValue(), eval, rng)
	if err != nil {
		b.Fatal(err)
	}
	tree.SeededEval = seeded
	tree.DisablePathPooling = !pooling
	return tree
}

// BenchmarkSampleParallel measures UCT sampling rounds/s at 1, 2, and 4
// virtual-loss workers (1 worker delegates to the sequential sampler).
// Speedup above 1 worker requires multiple cores; see BENCH_planner.json
// for the recorded num_cpu.
func BenchmarkSampleParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tree := benchTree(b, 11, true)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := tree.SampleParallelBatch(ctx, b.N, workers); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSamplePooling isolates the sequential sampler's per-round
// allocations with the pooled descent path versus the pooling disabled —
// the allocs/op delta is what the pooling saves every round.
func BenchmarkSamplePooling(b *testing.B) {
	for _, mode := range []struct {
		name    string
		pooling bool
	}{{"pooled", true}, {"unpooled", false}} {
		b.Run(mode.name, func(b *testing.B) {
			tree := benchTree(b, 12, mode.pooling)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := tree.SampleBatch(ctx, b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkHolisticEndToEnd measures one complete holistic vocalization on
// a simulated clock.
func BenchmarkHolisticEndToEnd(b *testing.B) {
	s := benchSetup(b)
	q, err := s.FlightsQuery("-", "RD")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{
			Format:               speech.PercentFormat,
			Seed:                 int64(i),
			Clock:                voice.NewSimClock(),
			SimRoundCost:         time.Millisecond,
			MaxRoundsPerSentence: 2000,
		}
		if _, err := core.NewHolistic(s.Flights, q, cfg).Vocalize(); err != nil {
			b.Fatal(err)
		}
	}
}
